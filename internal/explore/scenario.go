package explore

import (
	"fmt"
	"strings"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/invariant"
	"adore/internal/types"
)

// Scenario is a named, scripted execution of the Adore model reproducing
// one of the paper's behavioural figures. Run executes the script and
// returns a transcript: after each step the resulting cache tree is
// rendered, and the final state is checked against the expectation.
type Scenario struct {
	// Name identifies the scenario ("fig5", "fig4-bug", ...).
	Name string
	// About summarizes what the scenario demonstrates.
	About string
	// Build constructs the initial state.
	Build func() *core.State
	// Script is the sequence of operations; each returns a description.
	Script []func(*core.State) (string, error)
	// ExpectViolation names the invariant the final state must violate
	// (empty = all applicable invariants must hold).
	ExpectViolation string
}

// Transcript is the result of running a scenario.
type Transcript struct {
	Name  string
	Steps []string
	Final *core.State
	// Violations are the invariant violations in the final state.
	Violations []invariant.Violation
	// Output is the full human-readable transcript.
	Output string
}

// Run executes the scenario.
func (sc Scenario) Run() (*Transcript, error) {
	st := sc.Build()
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n%s\n\ninitial state:\n%s\n", sc.Name, sc.About, st.Tree.Render())
	tr := &Transcript{Name: sc.Name}
	for i, step := range sc.Script {
		desc, err := step(st)
		if err != nil {
			return nil, fmt.Errorf("scenario %s step %d (%s): %w", sc.Name, i, desc, err)
		}
		tr.Steps = append(tr.Steps, desc)
		fmt.Fprintf(&b, "step %d: %s\n%s\n", i+1, desc, st.Tree.Render())
	}
	tr.Final = st
	tr.Violations = invariant.CheckAllForced(st)
	for _, v := range tr.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v.Error())
	}
	tr.Output = b.String()

	if sc.ExpectViolation == "" && len(tr.Violations) > 0 {
		return tr, fmt.Errorf("scenario %s: unexpected violations: %v", sc.Name, tr.Violations)
	}
	if sc.ExpectViolation != "" {
		found := false
		for _, v := range tr.Violations {
			if v.Invariant == sc.ExpectViolation {
				found = true
			}
		}
		if !found {
			return tr, fmt.Errorf("scenario %s: expected a %s violation, got %v", sc.Name, sc.ExpectViolation, tr.Violations)
		}
	}
	return tr, nil
}

// pull, invoke, reconfig, push are script-step combinators.

func pull(nid types.NodeID, q types.NodeSet, t types.Time) func(*core.State) (string, error) {
	return func(s *core.State) (string, error) {
		desc := fmt.Sprintf("pull %s Q=%s T=%d", nid, q, t)
		_, err := s.Pull(nid, core.PullChoice{Q: q, T: t})
		return desc, err
	}
}

func invoke(nid types.NodeID, m types.MethodID) func(*core.State) (string, error) {
	return func(s *core.State) (string, error) {
		desc := fmt.Sprintf("invoke %s %s", nid, m)
		_, err := s.Invoke(nid, m)
		return desc, err
	}
}

func reconfig(nid types.NodeID, ncf config.Config) func(*core.State) (string, error) {
	return func(s *core.State) (string, error) {
		desc := fmt.Sprintf("reconfig %s → %s", nid, ncf)
		_, err := s.Reconfig(nid, ncf)
		return desc, err
	}
}

// pushLatest pushes the caller's greatest command cache (the usual case of
// committing everything invoked so far).
func pushLatest(nid types.NodeID, q types.NodeSet) func(*core.State) (string, error) {
	return func(s *core.State) (string, error) {
		var target *core.Cache
		for _, c := range s.Tree.All() {
			if c.IsCommand() && c.Caller == nid && (target == nil || c.Greater(target)) {
				target = c
			}
		}
		if target == nil {
			return fmt.Sprintf("push %s (no target)", nid), fmt.Errorf("no command cache for %s", nid)
		}
		desc := fmt.Sprintf("push %s Q=%s CM=%d", nid, q, target.ID)
		res, err := s.Push(nid, core.PushChoice{Q: q, CM: target.ID})
		if err == nil && !res.Quorum {
			desc += " (no quorum)"
		}
		return desc, err
	}
}

// Fig5 reproduces the paper's Fig. 5 walkthrough: election, methods,
// partial commit, reconfiguration, and a competing election that lands on
// the committed cache because the voters have not seen the newer branch.
func Fig5() Scenario {
	maj := func(ids ...types.NodeID) config.Config { return config.NewMajorityConfig(types.NewNodeSet(ids...)) }
	return Scenario{
		Name:  "fig5",
		About: "Fig. 5: Adore behaviours — pull, invoke, push, reconfig, competing pull.",
		Build: func() *core.State {
			return core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
		},
		Script: []func(*core.State) (string, error){
			// (a)/(b): S1 is elected with S2's vote.
			pull(1, types.NewNodeSet(1, 2), 1),
			// (b): S1 invokes M1, M2.
			invoke(1, 1),
			invoke(1, 2),
			// (c): S1 commits through M2 with supporters {S1,S2}.
			pushLatest(1, types.NewNodeSet(1, 2)),
			// (d): S1 removes S3 (guards hold: committed CCache at time 1).
			reconfig(1, maj(1, 2)),
			// (e): S2 and S3 elect S2; their most recent cache is the
			// CCache, so the ECache forks below it, abandoning the RCache.
			pull(2, types.NewNodeSet(2, 3), 2),
			invoke(2, 3),
		},
	}
}

// Fig4Bug reproduces Fig. 4 / Fig. 12: with R3 disabled (the published
// pre-fix Raft single-server algorithm), two leaders with disjoint quorums
// commit on divergent branches — a replicated-state-safety violation.
func Fig4Bug() Scenario {
	maj := func(ids ...types.NodeID) config.Config { return config.NewMajorityConfig(types.NewNodeSet(ids...)) }
	return Scenario{
		Name: "fig4-bug",
		About: "Fig. 4 / Fig. 12: Raft single-server reconfiguration bug. " +
			"Without R3, S1 and S2 interleave reconfigurations until their quorums are disjoint.",
		ExpectViolation: "Safety",
		Build: func() *core.State {
			return core.NewState(config.RaftSingleNode, types.Range(1, 4), core.WithoutR3())
		},
		Script: []func(*core.State) (string, error){
			// S1 is the leader of {S1..S4} and proposes removing S4,
			// but fails to replicate the RCache (nobody else sees it).
			pull(1, types.NewNodeSet(1, 2, 3), 1),
			reconfig(1, maj(1, 2, 3)),
			// S2 is elected with S3 and S4's votes (they never saw the
			// RCache), and removes S3. Its new config {S1,S2,S4} takes
			// effect immediately, so {S2,S4} commits it.
			pull(2, types.NewNodeSet(2, 3, 4), 2),
			reconfig(2, maj(1, 2, 4)),
			pushLatest(2, types.NewNodeSet(2, 4)),
			// S1 is re-elected using its own uncommitted config
			// {S1,S2,S3}: S1 and S3 form a "quorum" that has not seen
			// S2's committed reconfiguration.
			pull(1, types.NewNodeSet(1, 3), 3),
			invoke(1, 9),
			pushLatest(1, types.NewNodeSet(1, 3)),
		},
	}
}

// Fig4Fixed runs the same schedule with R3 enabled and shows the fix: S2's
// second reconfiguration is rejected until it commits a command in its own
// term, so the divergence never arises.
func Fig4Fixed() Scenario {
	sc := Fig4Bug()
	sc.Name = "fig4-fixed"
	sc.About = "Fig. 4 with R3 enabled: the dangerous reconfig is rejected (ErrR3)."
	sc.ExpectViolation = ""
	sc.Build = func() *core.State {
		return core.NewState(config.RaftSingleNode, types.Range(1, 4), core.DefaultRules())
	}
	// Replace S2's reconfig with a step asserting it is rejected.
	maj := func(ids ...types.NodeID) config.Config { return config.NewMajorityConfig(types.NewNodeSet(ids...)) }
	sc.Script = []func(*core.State) (string, error){
		pull(1, types.NewNodeSet(1, 2, 3), 1),
		func(s *core.State) (string, error) {
			_, err := s.Reconfig(1, maj(1, 2, 3))
			if err == nil {
				return "reconfig S1 (unexpectedly accepted)", fmt.Errorf("R3 should reject reconfig before a same-term commit")
			}
			return "reconfig S1 → rejected by R3 (must first commit in term 1)", nil
		},
		// The legal route: commit a no-op first, then reconfigure.
		invoke(1, 1),
		pushLatest(1, types.NewNodeSet(1, 2, 3)),
		reconfig(1, maj(1, 2, 3)),
		pushLatest(1, types.NewNodeSet(1, 2, 3)),
	}
	return sc
}

// NoR2Bug demonstrates why R2 is necessary: with R2 disabled a leader can
// chain two reconfigurations before either commits, and committing them
// together moves the configuration two R1⁺ steps at once — far enough that
// an old-configuration quorum no longer overlaps the new one. The paper:
// "R2 ... prevents the configuration from changing twice in a single
// commit, which might break the overlap guarantee (OVERLAP only holds for
// consecutive configurations)."
func NoR2Bug() Scenario {
	maj := func(ids ...types.NodeID) config.Config { return config.NewMajorityConfig(types.NewNodeSet(ids...)) }
	return Scenario{
		Name: "no-r2-bug",
		About: "Without R2, two stacked reconfigurations commit at once: " +
			"{S1,S2,S3} grows to {S1..S5} in one commit, and {S2,S3} still " +
			"believes it is a quorum of the old configuration.",
		ExpectViolation: "Safety",
		Build: func() *core.State {
			return core.NewState(config.RaftSingleNode, types.Range(1, 3), core.WithoutR2())
		},
		Script: []func(*core.State) (string, error){
			pull(1, types.NewNodeSet(1, 2), 1),
			invoke(1, 1),
			pushLatest(1, types.NewNodeSet(1, 2)), // R3 satisfied
			// Two stacked reconfigurations (R2 would reject the second).
			reconfig(1, maj(1, 2, 3, 4)),
			reconfig(1, maj(1, 2, 3, 4, 5)),
			// Commit both at once with the fresh nodes' help; S2 and S3
			// never hear about it.
			pushLatest(1, types.NewNodeSet(1, 4, 5)),
			// S2 is elected by an old-configuration "quorum" {S2,S3} that
			// is disjoint from {S1,S4,S5}: divergent commits follow.
			pull(2, types.NewNodeSet(2, 3), 2),
			invoke(2, 9),
			pushLatest(2, types.NewNodeSet(2, 3)),
		},
	}
}

// NoR1Bug demonstrates why R1⁺ is necessary: with R1⁺ disabled a leader may
// propose an arbitrary configuration whose quorums share nothing with the
// old one.
func NoR1Bug() Scenario {
	maj := func(ids ...types.NodeID) config.Config { return config.NewMajorityConfig(types.NewNodeSet(ids...)) }
	return Scenario{
		Name: "no-r1-bug",
		About: "Without R1⁺, one reconfiguration jumps from {S1,S2,S3} to " +
			"{S1,S4,S5}: majorities {S1,S4} and {S2,S3} are disjoint.",
		ExpectViolation: "Safety",
		Build: func() *core.State {
			return core.NewState(config.RaftSingleNode, types.Range(1, 3), core.WithoutR1())
		},
		Script: []func(*core.State) (string, error){
			pull(1, types.NewNodeSet(1, 2), 1),
			invoke(1, 1),
			pushLatest(1, types.NewNodeSet(1, 2)), // R3 satisfied
			reconfig(1, maj(1, 4, 5)),             // arbitrary jump
			pushLatest(1, types.NewNodeSet(1, 4)), // quorum of the new config
			// The old majority {S2,S3} elects S2 without ever seeing it.
			pull(2, types.NewNodeSet(2, 3), 2),
			invoke(2, 9),
			pushLatest(2, types.NewNodeSet(2, 3)),
		},
	}
}

// Scenarios lists every named scenario.
func Scenarios() []Scenario {
	return []Scenario{Fig5(), Fig4Bug(), Fig4Fixed(), NoR2Bug(), NoR1Bug()}
}

// ScenarioByName returns the named scenario, or ok=false.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
