package explore

import (
	"testing"

	"adore/internal/config"
	"adore/internal/core"
)

// TestBFSDeferredSafe explores the §8 Lamport-style deferred
// reconfiguration variant: with R1⁺/R2 and inert uncommitted
// configurations, replicated state safety holds without R3.
func TestBFSDeferredSafe(t *testing.T) {
	s := initial(config.RaftSingleNode, 3, core.DeferredRules(0))
	res := BFS(s, Options{MaxDepth: 4, MaxStates: 30000})
	if res.Violation != nil {
		t.Fatalf("violation in deferred model: %v\ntrace: %v\n%s",
			res.Violation, res.Trace, res.ViolationState)
	}
	t.Logf("deferred: %d states, %d transitions", res.States, res.Transitions)
}

// TestBFSDeferredAlphaSafe adds the α pipeline bound; it must only shrink
// the space, never break safety.
func TestBFSDeferredAlphaSafe(t *testing.T) {
	unbounded := BFS(initial(config.RaftSingleNode, 3, core.DeferredRules(0)),
		Options{MaxDepth: 4, MaxStates: 30000})
	bounded := BFS(initial(config.RaftSingleNode, 3, core.DeferredRules(1)),
		Options{MaxDepth: 4, MaxStates: 30000})
	if bounded.Violation != nil {
		t.Fatalf("violation with α=1: %v", bounded.Violation)
	}
	if bounded.States > unbounded.States {
		t.Errorf("α bound enlarged the space: %d > %d", bounded.States, unbounded.States)
	}
}

// TestRandomWalkDeferredAllSchemes sweeps the deferred variant across every
// scheme.
func TestRandomWalkDeferredAllSchemes(t *testing.T) {
	for _, scheme := range config.AllSchemes() {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			t.Parallel()
			s := initial(scheme, 3, core.DeferredRules(3))
			res := RandomWalk(s, 23, 25, 20, Options{})
			if res.Violation != nil {
				t.Fatalf("violation: %v\ntrace: %v\n%s", res.Violation, res.Trace, res.ViolationState)
			}
		})
	}
}
