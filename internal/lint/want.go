package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strconv"
)

// want.go implements the `// want "regex"` expectation harness used by the
// fixture tests: each fixture line that should produce a diagnostic carries
// a trailing comment with a regexp the message must match, and the test
// fails on any unmatched expectation or unexpected diagnostic.

// Both quoting styles are accepted: "..." (with escapes) and `...` (raw,
// convenient for patterns full of backslashes).
var wantRe = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// expectation is one `// want` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// CheckExpectations compares diagnostics against the `// want` annotations
// in prog's files and returns a list of mismatch descriptions (empty on
// success).
func CheckExpectations(prog *Program, diags []Diagnostic) []string {
	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			wants = append(wants, fileExpectations(prog, file)...)
		}
	}

	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re))
		}
	}
	sort.Strings(problems)
	return problems
}

func fileExpectations(prog *Program, file *ast.File) []*expectation {
	var out []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pattern, err := strconv.Unquote(m[1])
			if err != nil {
				continue
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
		}
	}
	return out
}
