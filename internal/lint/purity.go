package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// purity.go is the transitive-purity pass. The v1 pure-core check banned
// time/rand/sync at the import level of the sans-IO core; that proves
// nothing about what the core reaches *through its callees* — one helper
// in another package calling time.Now would silently break replayability.
// v2 walks the module call graph: every function a checked package can
// reach through static calls is summarized for impurity (wall clocks,
// randomness, IO, locks, goroutines, channel operations), and a checked
// function that reaches an impure callee is flagged at the call site with
// the witness chain.
//
// Two tiers share the machinery:
//
//   - pure-core (Config.PureCorePkgs, the raftcore package): full sans-IO
//     discipline. No clocks of any kind, no randomness (seeded included),
//     no sync, no IO, no goroutines, no channel operations — directly or
//     through any callee chain. Calls through func values are refused too
//     (they could hide anything) unless the func-typed field is explicitly
//     allowlisted (Config.PurityAllowCalls; the caller-supplied jitter
//     hook Config.Jitter is the sanctioned example — randomness enters the
//     core only through it, owned and seeded by the caller). The v1
//     import bans are kept as an early, readable signal.
//
//   - model (Config.ModelPkgs): replayability discipline. Wall clocks,
//     global (unseeded) randomness, IO, sync, goroutines, and channels are
//     banned transitively; explicitly seeded *rand.Rand sources remain the
//     sanctioned way to randomize. Direct wall-clock/global-rand calls are
//     the deterministic-model pass's beat and are not re-reported here —
//     this tier adds the transitive reach and the concurrency facets.
//
// Test files of checked packages are exempt as before: the discipline
// binds the shipped core; tests drive it from outside.

// Impurity categories.
const (
	catClock  = "clock"
	catRand   = "rand"        // global (unseeded) randomness
	catSeeded = "seeded-rand" // explicitly seeded sources & their methods
	catSync   = "sync"
	catIO     = "io"
	catGo     = "go"
	catChan   = "chan"
)

// purityFact is one impurity found directly in a function body.
type purityFact struct {
	cat  string
	what string // e.g. "time.Now", "go statement"
	pos  token.Pos
}

// purityInfo summarizes a function: its direct facts plus, per category,
// one witness (fact + the callee it came through) for the transitive set.
type purityInfo struct {
	facts []purityFact
	// reach maps category → witness for reachability reporting.
	reach map[string]purityWitness
}

type purityWitness struct {
	what string
	via  *types.Func // nil = direct in this function
}

// runPurity is the transitive-purity pass entry point.
func runPurity(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	isCore := inPkgs(pkg.Path, cfg.PureCorePkgs)
	isModel := inPkgs(pkg.Path, cfg.ModelPkgs)
	if !isCore && !isModel {
		return nil
	}
	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Pos: prog.Fset.Position(pos), Pass: "transitive-purity", Message: msg})
	}

	tier := "model"
	banned := map[string]bool{catClock: true, catRand: true, catSync: true, catIO: true, catGo: true, catChan: true}
	if isCore {
		tier = "pure core"
		banned[catSeeded] = true
	}

	pa := newPurityAnalysis(prog)
	checked := make(map[string]bool)
	for _, p := range cfg.PureCorePkgs {
		checked[p] = true
	}
	for _, p := range cfg.ModelPkgs {
		checked[p] = true
	}

	for _, file := range pkg.Files {
		if strings.HasSuffix(prog.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		if isCore {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if msg := forbiddenCoreImport(path); msg != "" {
					report(imp.Pos(), msg)
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			pa.checkFunc(prog.CallGraph().Nodes[fn], tier, banned, checked, isCore, cfg, report)
		}
	}
	return out
}

// forbiddenCoreImport maps an import path banned in pure core packages to
// its diagnostic, or returns "" for an allowed import.
func forbiddenCoreImport(path string) string {
	switch path {
	case "time":
		return "import of time in a pure core package; the core counts caller-supplied logical ticks"
	case "math/rand", "math/rand/v2":
		return "import of " + path + " in a pure core package; randomness enters only via Config.Jitter"
	case "sync", "sync/atomic":
		return "import of " + path + " in a pure core package; the caller serializes all access to the core"
	}
	return ""
}

// purityAnalysis caches per-function summaries across packages.
type purityAnalysis struct {
	prog *Program
	info map[*types.Func]*purityInfo // nil value = in progress (cycle)
}

func newPurityAnalysis(prog *Program) *purityAnalysis {
	return &purityAnalysis{prog: prog, info: make(map[*types.Func]*purityInfo)}
}

// checkFunc reports the impurities of one checked function: direct facts
// at their positions, transitive ones at the frontier call site (the call
// leaving the checked-package set) with a witness chain.
func (pa *purityAnalysis) checkFunc(node *FuncNode, tier string, banned map[string]bool,
	checked map[string]bool, strictDynamic bool, cfg Config, report func(token.Pos, string)) {
	if node == nil {
		return
	}
	// Direct facts, in source order.
	for _, f := range directFacts(node) {
		if !banned[f.cat] {
			continue
		}
		if tier == "model" && (f.cat == catClock || f.cat == catRand) {
			// Direct wall-clock and global-rand calls in model packages are
			// already the deterministic-model pass's diagnostics; only the
			// transitive reach is news here.
			continue
		}
		report(f.pos, f.what+" in a "+tier+" package; "+categoryRationale(f.cat, tier))
	}
	// Dynamic calls: the pure-core tier refuses what it cannot trace.
	// go-statement operands are already flagged as the (banned) goroutine
	// launch itself, so they are not re-reported here.
	if strictDynamic {
		for _, cs := range node.Calls {
			if !cs.Dynamic || cs.InGo {
				continue
			}
			if purityAllowed(cs.DynamicName, cfg.PurityAllowCalls) {
				continue
			}
			report(cs.Pos, "dynamic call through "+cs.DynamicName+" in a pure core package; "+
				"an untraceable callee cannot be proven pure (allowlist it in PurityAllowCalls if it is a sanctioned hook)")
		}
	}
	// Transitive reach through static callees outside the checked set
	// (callees inside it produce their own direct reports).
	for _, cs := range node.Calls {
		if cs.Callee == nil || cs.Dynamic || cs.InGo {
			continue
		}
		calleeNode, internal := pa.prog.CallGraph().Nodes[cs.Callee]
		if !internal {
			continue // external callees are direct facts, handled above
		}
		if checked[calleeNode.Pkg.Path] {
			continue
		}
		sum := pa.summarize(cs.Callee)
		for _, cat := range purityCategoryOrder {
			w, ok := sum.reach[cat]
			if !ok || !banned[cat] {
				continue
			}
			chain := pa.witnessChain(cs.Callee, cat, w)
			report(cs.Pos, "call to "+FuncDisplayName(cs.Callee)+" reaches "+w.what+
				" ("+strings.Join(chain, " → ")+") in a "+tier+" package; "+categoryRationale(cat, tier))
		}
	}
}

var purityCategoryOrder = []string{catClock, catRand, catSeeded, catSync, catIO, catGo, catChan}

// witnessChain renders the callee chain from fn to the witnessed fact.
func (pa *purityAnalysis) witnessChain(fn *types.Func, cat string, w purityWitness) []string {
	chain := []string{FuncDisplayName(fn)}
	for w.via != nil && len(chain) < 8 {
		fn = w.via
		chain = append(chain, FuncDisplayName(fn))
		sum := pa.summarize(fn)
		next, ok := sum.reach[cat]
		if !ok {
			break
		}
		w = next
	}
	return append(chain, w.what)
}

// summarize computes (and caches) the transitive impurity summary of a
// module-internal function.
func (pa *purityAnalysis) summarize(fn *types.Func) *purityInfo {
	if got, ok := pa.info[fn]; ok {
		if got == nil {
			return &purityInfo{reach: map[string]purityWitness{}} // cycle: partial
		}
		return got
	}
	pa.info[fn] = nil // in progress
	sum := &purityInfo{reach: make(map[string]purityWitness)}
	node, ok := pa.prog.CallGraph().Nodes[fn]
	if ok {
		sum.facts = directFacts(node)
		for _, f := range sum.facts {
			if _, seen := sum.reach[f.cat]; !seen {
				sum.reach[f.cat] = purityWitness{what: f.what}
			}
		}
		for _, cs := range node.Calls {
			if cs.Callee == nil || cs.Dynamic {
				continue
			}
			if _, internal := pa.prog.CallGraph().Nodes[cs.Callee]; !internal {
				continue
			}
			csum := pa.summarize(cs.Callee)
			for cat, w := range csum.reach {
				if _, seen := sum.reach[cat]; !seen {
					sum.reach[cat] = purityWitness{what: w.what, via: cs.Callee}
				}
			}
		}
	}
	pa.info[fn] = sum
	return sum
}

// directFacts lists the impurities appearing textually in one function
// (nested literals included — their code ships with the function).
func directFacts(node *FuncNode) []purityFact {
	var facts []purityFact
	add := func(cat, what string, pos token.Pos) {
		facts = append(facts, purityFact{cat: cat, what: what, pos: pos})
	}
	info := node.Pkg.Info
	// Call-based facts from the resolved call sites.
	for _, cs := range node.Calls {
		if cs.Callee == nil {
			continue
		}
		if cat, what := categorizeExternal(cs.Callee); cat != "" {
			add(cat, what, cs.Pos)
		}
	}
	// Syntax-based facts.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			add(catGo, "go statement", st.Pos())
		case *ast.SelectStmt:
			add(catChan, "select statement", st.Pos())
		case *ast.SendStmt:
			add(catChan, "channel send", st.Pos())
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				add(catChan, "channel receive", st.Pos())
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					add(catChan, "range over a channel", st.Pos())
				}
			}
		case *ast.CallExpr:
			// close(ch) and make(chan ...).
			if id, ok := st.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "close":
						add(catChan, "close of a channel", st.Pos())
					case "make":
						if len(st.Args) > 0 {
							if tv, ok := info.Types[st.Args[0]]; ok {
								if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
									add(catChan, "make(chan)", st.Pos())
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	return facts
}

// categorizeExternal classifies a standard-library callee into an
// impurity category ("" = pure/benign).
func categorizeExternal(fn *types.Func) (cat, what string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", ""
	}
	name := fn.Name()
	display := pkg.Name() + "." + name
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if isMethod {
		display = "(" + pkg.Name() + "." + typeShortName(sig.Recv().Type()) + ")." + name
	}
	switch pkg.Path() {
	case "time":
		if isMethod {
			return "", "" // Duration/Time arithmetic is pure
		}
		switch name {
		case "Now", "Since", "Until":
			return catClock, display
		case "Sleep", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
			return catClock, display
		}
		return "", "" // Parse, Date, Unix, ... are pure constructors
	case "math/rand", "math/rand/v2":
		if isMethod {
			return catSeeded, display // methods run on an explicitly seeded source
		}
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return catSeeded, display
		}
		return catRand, display // package-level funcs use the global source
	case "sync", "sync/atomic":
		return catSync, display
	case "os", "io", "io/fs", "io/ioutil", "net", "bufio", "syscall", "os/exec", "os/signal":
		return catIO, display
	case "fmt":
		// Fprint* writes to a caller-supplied writer — deterministic given
		// the writer; the sink's impurity belongs to whoever built it.
		switch name {
		case "Print", "Printf", "Println", "Scan", "Scanf", "Scanln":
			return catIO, display
		}
		return "", ""
	case "path/filepath":
		switch name {
		case "Walk", "WalkDir", "Glob", "Abs", "EvalSymlinks":
			return catIO, display
		}
		return "", ""
	case "runtime":
		switch name {
		case "Gosched", "GC", "Goexit":
			return catSync, display
		}
		return "", ""
	}
	return "", ""
}

// categoryRationale explains why a category is banned in a tier.
func categoryRationale(cat, tier string) string {
	core := tier == "pure core"
	switch cat {
	case catClock:
		if core {
			return "the core counts caller-supplied logical ticks"
		}
		return "model runs must replay from a seed"
	case catRand:
		if core {
			return "randomness enters only via the allowlisted jitter hook"
		}
		return "use an explicitly seeded *rand.Rand"
	case catSeeded:
		return "even seeded randomness is caller-owned; inject values through the jitter hook"
	case catSync:
		return "the caller serializes all access; hidden synchronization breaks replay equivalence"
	case catIO:
		return "all effects must flow out through Ready batches"
	case catGo:
		if core {
			return "the core must stay single-threaded and deterministic"
		}
		return "model runs must stay single-threaded and deterministic"
	case catChan:
		if core {
			return "the core communicates only through Ready batches"
		}
		return "channel scheduling is nondeterministic; model runs must replay from a seed"
	}
	return "it breaks the purity discipline"
}

// purityAllowed reports whether a dynamic-call site name (Type.Field) is
// on the allowlist.
func purityAllowed(name string, allow []string) bool {
	for _, a := range allow {
		if a == name {
			return true
		}
	}
	return false
}
