package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

var guardedRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// lockset.go is the guarded-field pass, v2: a flow-sensitive lockset
// analysis over the shared CFG instead of the v1 "a Lock() anywhere in the
// body covers everything" approximation. Three rules:
//
//  1. A field annotated "// guarded by mu" may only be touched at a
//     program point where mu is definitely held (must-analysis: meet over
//     all paths is set intersection). An explicit mu.Unlock() releases the
//     lock for the rest of the path — late accesses after an early unlock
//     are flagged, the exact unlock-then-read window the ReadIndex race
//     fix closed by hand. A deferred Unlock releases only at function
//     exit, so it never opens such a window.
//
//  2. A helper named ...Locked is verified at its call sites: the caller
//     must hold the mutexes the helper actually needs (computed by
//     analyzing the helper's body with an empty entry lockset and
//     collecting the guards of its unprotected accesses, transitively
//     through further Locked calls). Taking a Locked method as a value is
//     held to the same bar — the binding escapes the lock scope.
//
//  3. Function literals are analyzed with an empty entry lockset: a
//     closure can escape onto another goroutine, so an enclosing Lock()
//     does not cover it.
//
// Lock identity is the mutex *field* (types.Var), not the instance —
// two objects of the same struct type share a lockset slot. That matches
// the v1 pass and the repo's single-instance usage.
func runLockset(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	if !inPkgs(pkg.Path, cfg.GuardedPkgs) {
		return nil
	}
	guards := collectGuards(pkg)
	if len(guards) == 0 {
		return nil
	}
	a := &locksetAnalysis{
		prog:   prog,
		pkg:    pkg,
		guards: guards,
		needs:  make(map[*types.Func]map[*types.Var]bool),
	}

	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Pos: prog.Fset.Position(pos), Pass: "lockset", Message: msg})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			entry := a.entryLockset(pkg, fn)
			a.checkBody(fn.Body, entry, report)
		}
	}
	return out
}

// locksetAnalysis carries the per-package state.
type locksetAnalysis struct {
	prog   *Program
	pkg    *Package
	guards map[*types.Var]guardInfo
	// needs memoizes, per Locked helper, the mutexes its body requires at
	// entry. A nil entry marks an in-progress computation (recursion).
	needs map[*types.Func]map[*types.Var]bool
}

// guardInfo describes one annotated field.
type guardInfo struct {
	mutex *types.Var // the guarding mutex field
	name  string     // annotation text, for messages
}

// collectGuards scans struct declarations for "guarded by" comments and
// resolves each annotation to the named mutex field of the same struct.
func collectGuards(pkg *Package) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// First resolve every field name in this struct so annotations
			// can point at their mutex.
			fieldByName := make(map[string]*types.Var)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						fieldByName[name.Name] = v
					}
				}
			}
			for _, f := range st.Fields.List {
				m := matchGuardComment(f)
				if m == "" {
					continue
				}
				mu, ok := fieldByName[m]
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{mutex: mu, name: m}
					}
				}
			}
			return true
		})
	}
	return guards
}

func matchGuardComment(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// entryLockset is the lockset assumed on entry to a declared function: a
// ...Locked helper is entered with its receiver's mutexes held (that is
// the naming contract this pass verifies at every call site); everything
// else starts with nothing held.
func (a *locksetAnalysis) entryLockset(pkg *Package, fn *ast.FuncDecl) map[*types.Var]bool {
	entry := make(map[*types.Var]bool)
	if !strings.HasSuffix(fn.Name.Name, "Locked") {
		return entry
	}
	for _, mu := range receiverMutexes(pkg, fn) {
		entry[mu] = true
	}
	return entry
}

// receiverMutexes lists the sync.Mutex/RWMutex fields of fn's receiver
// struct (nil for free functions and non-struct receivers).
func receiverMutexes(pkg *Package, fn *ast.FuncDecl) []*types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := pkg.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			out = append(out, st.Field(i))
		}
	}
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (optionally
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// lockState is the per-point dataflow fact: held is the must-hold set;
// released records mutexes explicitly unlocked earlier on some path
// (may-analysis, used only to sharpen messages).
type lockState struct {
	held     map[*types.Var]bool
	released map[*types.Var]bool
}

func (s lockState) clone() lockState {
	h := make(map[*types.Var]bool, len(s.held))
	for k := range s.held {
		h[k] = true
	}
	r := make(map[*types.Var]bool, len(s.released))
	for k := range s.released {
		r[k] = true
	}
	return lockState{held: h, released: r}
}

// meet folds src into dst (held: intersection, released: union) and
// reports whether dst changed.
func (s *lockState) meet(src lockState) bool {
	changed := false
	for k := range s.held {
		if !src.held[k] {
			delete(s.held, k)
			changed = true
		}
	}
	for k := range src.released {
		if !s.released[k] {
			s.released[k] = true
			changed = true
		}
	}
	return changed
}

// violation is one lockset fact the analysis surfaces; in report mode it
// becomes a diagnostic, in needed-collection mode it feeds the helper's
// entry requirement.
type violation struct {
	pos     token.Pos
	missing []*types.Var // mutexes that had to be held here
	msg     string       // report-mode message ("" in collect mode)
}

// checkBody runs the dataflow over one function body and reports
// violations; nested function literals are analyzed afterwards with empty
// entry locksets.
func (a *locksetAnalysis) checkBody(body *ast.BlockStmt, entry map[*types.Var]bool, report func(token.Pos, string)) {
	var lits []*ast.FuncLit
	a.flow(body, entry, func(v violation) { report(v.pos, v.msg) }, &lits)
	for i := 0; i < len(lits); i++ {
		a.flow(lits[i].Body, map[*types.Var]bool{}, func(v violation) { report(v.pos, v.msg) }, &lits)
	}
}

// flow runs the fixpoint lockset analysis over body. onViolation receives
// each unprotected access/call; lits (when non-nil) accumulates nested
// literals for the caller to analyze separately.
func (a *locksetAnalysis) flow(body *ast.BlockStmt, entry map[*types.Var]bool, onViolation func(violation), lits *[]*ast.FuncLit) {
	g := BuildCFG(body)
	in := make([]lockState, len(g.Blocks))
	reached := make([]bool, len(g.Blocks))
	in[g.Entry.Index] = lockState{held: entry, released: map[*types.Var]bool{}}.clone()
	reached[g.Entry.Index] = true

	order := g.ReversePostOrder()
	// Fixpoint: back edges can shrink loop-head locksets (a loop body that
	// unlocks leaves the next iteration unprotected).
	for pass := 0; ; pass++ {
		changed := false
		for _, blk := range order {
			if !reached[blk.Index] {
				continue
			}
			st := in[blk.Index].clone()
			// Violations are reported on the final pass only, once the
			// fixpoint has stabilized (pass > 0 and nothing changed in the
			// previous sweep is detected by the caller loop below).
			a.transfer(blk, &st, nil, nil)
			for _, e := range blk.Succs {
				if !reached[e.To.Index] {
					in[e.To.Index] = st.clone()
					reached[e.To.Index] = true
					changed = true
				} else if in[e.To.Index].meet(st) {
					changed = true
				}
			}
		}
		if !changed || pass > len(g.Blocks)+2 {
			break
		}
	}
	// Final sweep: emit violations with the converged entry states.
	for _, blk := range order {
		if !reached[blk.Index] {
			continue
		}
		st := in[blk.Index].clone()
		a.transfer(blk, &st, onViolation, lits)
	}
	// The exit block holds deferred calls; it is processed as part of the
	// sweep above (it is in the order and reached via return edges).
}

// transfer interprets one block's nodes against st, invoking onViolation
// for unprotected accesses (nil = just compute the out-state).
func (a *locksetAnalysis) transfer(blk *Block, st *lockState, onViolation func(violation), lits *[]*ast.FuncLit) {
	isExit := len(blk.Succs) == 0
	for _, node := range blk.Nodes {
		if d, ok := node.(*ast.DeferStmt); ok {
			// The deferred call's receiver and arguments are evaluated
			// here; the call itself runs at exit (its node is in the exit
			// block). Lock/Unlock effects — and the Locked-callee check —
			// of the deferred call therefore do not apply at this point,
			// so visit only the operands, not the call expression.
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
				a.visitExprs(sel.X, st, false, onViolation, lits)
			}
			for _, arg := range d.Call.Args {
				a.visitExprs(arg, st, false, onViolation, lits)
			}
			continue
		}
		a.visitExprs(node, st, isExit, onViolation, lits)
	}
}

// visitExprs walks one node's expressions in evaluation order, applying
// lock transfers and checking accesses. atExit marks deferred-call
// processing in the exit block: lock transfers apply (a deferred Unlock
// releases at exit) but field accesses are not re-checked — their
// operands were evaluated at the defer statement.
func (a *locksetAnalysis) visitExprs(node ast.Node, st *lockState, atExit bool, onViolation func(violation), lits *[]*ast.FuncLit) {
	walkNode(node, func(m ast.Node) {
		switch e := m.(type) {
		case *ast.FuncLit:
			if lits != nil {
				*lits = append(*lits, e)
			}
		case *ast.CallExpr:
			if mu, op := a.lockCall(e); mu != nil {
				switch op {
				case "Lock", "RLock":
					st.held[mu] = true
					delete(st.released, mu)
				case "Unlock", "RUnlock":
					delete(st.held, mu)
					st.released[mu] = true
				}
			}
		case *ast.SelectorExpr:
			sel, ok := a.pkg.Info.Selections[e]
			if !ok {
				return
			}
			switch sel.Kind() {
			case types.FieldVal:
				if atExit {
					return
				}
				v, ok := sel.Obj().(*types.Var)
				if !ok {
					return
				}
				g, guarded := a.guards[v]
				if !guarded || st.held[g.mutex] {
					return
				}
				if onViolation != nil {
					msg := "access to " + v.Name() + " (guarded by " + g.name +
						") without holding the lock; acquire it or name the helper ...Locked"
					if st.released[g.mutex] {
						msg = "access to " + v.Name() + " (guarded by " + g.name + ") after " +
							g.name + ".Unlock() on this path; the unlock-then-read window breaks atomicity"
					}
					onViolation(violation{pos: e.Sel.Pos(), missing: []*types.Var{g.mutex}, msg: msg})
				}
			case types.MethodVal:
				fn, ok := sel.Obj().(*types.Func)
				if !ok || !strings.HasSuffix(fn.Name(), "Locked") {
					return
				}
				needed := a.neededLocks(fn)
				var missing []*types.Var
				for _, mu := range sortedVars(needed) {
					if !st.held[mu] {
						missing = append(missing, mu)
					}
				}
				if len(missing) == 0 || onViolation == nil {
					return
				}
				names := make([]string, len(missing))
				for i, mu := range missing {
					names[i] = mu.Name()
				}
				onViolation(violation{
					pos:     e.Sel.Pos(),
					missing: missing,
					msg: "call to " + fn.Name() + " requires holding " + strings.Join(names, ", ") +
						"; acquire the lock first or call it from a ...Locked helper",
				})
			}
		}
	})
}

// lockCall recognizes mu.Lock / mu.RLock / mu.Unlock / mu.RUnlock where mu
// is a sync mutex variable (struct field, local, or package-level),
// returning the mutex variable and the operation.
func (a *locksetAnalysis) lockCall(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	var v *types.Var
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := a.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			v, _ = s.Obj().(*types.Var)
		}
	case *ast.Ident:
		v, _ = a.pkg.Info.Uses[x].(*types.Var)
	}
	if v == nil || !isMutexType(v.Type()) {
		return nil, ""
	}
	return v, op
}

// neededLocks computes the mutexes a ...Locked helper requires at entry:
// its body is analyzed with nothing held, and every guard its unprotected
// accesses need — including, transitively, what further Locked callees
// need — becomes part of the requirement. Memoized; recursion yields the
// partial set.
func (a *locksetAnalysis) neededLocks(fn *types.Func) map[*types.Var]bool {
	if got, ok := a.needs[fn]; ok {
		if got == nil {
			return map[*types.Var]bool{}
		}
		return got
	}
	a.needs[fn] = nil // in progress
	need := make(map[*types.Var]bool)
	node, ok := a.prog.CallGraph().Nodes[fn]
	if ok && node.Decl != nil && node.Decl.Body != nil {
		// Analyze in the helper's own package context (guards and
		// selections are package-scoped).
		helperA := a
		if node.Pkg != a.pkg {
			helperA = &locksetAnalysis{
				prog:   a.prog,
				pkg:    node.Pkg,
				guards: collectGuards(node.Pkg),
				needs:  a.needs,
			}
		}
		helperA.flow(node.Decl.Body, map[*types.Var]bool{}, func(v violation) {
			for _, mu := range v.missing {
				need[mu] = true
			}
		}, nil)
	}
	a.needs[fn] = need
	return need
}

// sortedVars returns the set's variables in stable (position) order.
func sortedVars(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
