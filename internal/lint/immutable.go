package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runImmutable enforces the append-only cache tree: fields of the cache
// node types (core.Cache) may be written only by the designated
// constructors in the core package. Everywhere else a cache reached
// through a pointer is read-only — the rdist induction in the paper
// assumes a cache's content never changes after it enters the tree.
//
// Writes through a value copy held in a local variable are permitted: they
// mutate the copy, not the tree.
func runImmutable(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	cacheTypes := lookupNamedTypes(prog, cfg.CorePkg, cfg.CacheTypes)
	if len(cacheTypes) == 0 {
		return nil
	}
	allowed := make(map[string]bool, len(cfg.CacheConstructors))
	for _, name := range cfg.CacheConstructors {
		allowed[name] = true
	}
	inCore := inPkgs(pkg.Path, []string{cfg.CorePkg})

	var out []Diagnostic
	report := func(pos token.Pos, field string) {
		out = append(out, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Pass: "immutable-cache",
			Message: "write to cache field " + field +
				" outside a constructor; cache nodes are immutable once inserted",
		})
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body == nil {
				continue
			}
			if !ok {
				continue
			}
			if inCore && allowed[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if name, bad := mutatesCache(pkg.Info, lhs, cacheTypes); bad {
							report(lhs.Pos(), name)
						}
					}
				case *ast.IncDecStmt:
					if name, bad := mutatesCache(pkg.Info, st.X, cacheTypes); bad {
						report(st.X.Pos(), name)
					}
				case *ast.UnaryExpr:
					// Taking the address of a field of a shared cache hands
					// out a mutable alias; treat it as a write.
					if st.Op == token.AND {
						if name, bad := mutatesCache(pkg.Info, st.X, cacheTypes); bad {
							report(st.X.Pos(), name)
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// mutatesCache reports whether expr is a selector naming a field of one of
// the cache types, reached through shared (pointer) access rather than a
// local value copy.
func mutatesCache(info *types.Info, expr ast.Expr, cacheTypes []*types.Named) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		if isCacheType(ptr.Elem(), cacheTypes) {
			return sel.Sel.Name, true
		}
		return "", false
	}
	if !isCacheType(recv, cacheTypes) {
		return "", false
	}
	// Value receiver: a plain local variable holds a copy — mutating it is
	// fine. Anything else (deref, map/slice element, field of a shared
	// struct) aliases tree state.
	if id, ok := sel.X.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() && v.Parent() != v.Pkg().Scope() {
			return "", false
		}
	}
	return sel.Sel.Name, true
}

func isCacheType(t types.Type, cacheTypes []*types.Named) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, ct := range cacheTypes {
		if named.Obj() == ct.Obj() {
			return true
		}
	}
	return false
}

// lookupNamedTypes resolves type names declared in the package at path.
func lookupNamedTypes(prog *Program, path string, names []string) []*types.Named {
	tpkg := prog.Lookup(path)
	if tpkg == nil {
		return nil
	}
	var out []*types.Named
	for _, name := range names {
		obj := tpkg.Scope().Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			out = append(out, named)
		}
	}
	return out
}
