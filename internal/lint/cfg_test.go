package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a function body and builds its CFG.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f(c bool, n int, ch chan int, xs []int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// countEdges tallies the graph's edges by kind.
func countEdges(g *CFG, back bool) int {
	n := 0
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Back == back {
				n++
			}
		}
	}
	return n
}

// forwardReach returns the set of block indices reachable from from over
// forward edges only.
func forwardReach(g *CFG, from *Block) map[int]bool {
	seen := map[int]bool{from.Index: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !e.Back && !seen[e.To.Index] {
				seen[e.To.Index] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(t, "x := 1\n_ = x")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	if countEdges(g, true) != 0 {
		t.Fatalf("straight-line code has back edges")
	}
	if !forwardReach(g, g.Entry)[g.Exit.Index] {
		t.Fatalf("exit not forward-reachable from entry")
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	g := buildCFG(t, "if c {\n_ = 1\n} else {\n_ = 2\n}\n_ = 3")
	if got := len(g.Entry.Succs); got != 2 {
		t.Fatalf("if-else entry has %d successors, want 2 (then, else)", got)
	}
	if countEdges(g, true) != 0 {
		t.Fatalf("if-else has back edges")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := buildCFG(t, "for i := 0; i < n; i++ {\n_ = i\n}")
	if got := countEdges(g, true); got != 1 {
		t.Fatalf("for loop has %d back edges, want 1", got)
	}
	// Every back edge carries a forward shadow to the loop exit, so facts
	// set in the body survive past the loop in a back-edge-cutting
	// analysis.
	for _, b := range g.Blocks {
		hasBack := false
		hasForward := false
		for _, e := range b.Succs {
			if e.Back {
				hasBack = true
			} else {
				hasForward = true
			}
		}
		if hasBack && !hasForward {
			t.Fatalf("block %d has a back edge but no forward shadow", b.Index)
		}
	}
}

func TestCFGInfiniteLoopShadowReachesExit(t *testing.T) {
	// `for {}` has no cond edge to the loop exit; only the shadow edges
	// make the code after the loop (and the function exit) forward-
	// reachable.
	g := buildCFG(t, "for {\nif c {\ncontinue\n}\n_ = 1\n}")
	if !forwardReach(g, g.Entry)[g.Exit.Index] {
		t.Fatalf("exit not forward-reachable through shadow edges")
	}
	if got := countEdges(g, true); got != 2 {
		t.Fatalf("loop has %d back edges, want 2 (continue, body end)", got)
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildCFG(t, "for _, x := range xs {\n_ = x\n}\n_ = 1")
	if got := countEdges(g, true); got != 1 {
		t.Fatalf("range loop has %d back edges, want 1", got)
	}
}

func TestCFGDeferLIFO(t *testing.T) {
	g := buildCFG(t, "defer println(1)\ndefer println(2)\n_ = 3")
	if got := len(g.Exit.Nodes); got != 2 {
		t.Fatalf("exit holds %d deferred calls, want 2", got)
	}
	// LIFO: the later defer runs first.
	if g.Exit.Nodes[0].Pos() < g.Exit.Nodes[1].Pos() {
		t.Fatalf("deferred calls not in LIFO order")
	}
}

func TestCFGReturnEdges(t *testing.T) {
	g := buildCFG(t, "if c {\nreturn\n}\n_ = 1")
	into := 0
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.To == g.Exit {
				into++
			}
		}
	}
	if into != 2 {
		t.Fatalf("%d edges into exit, want 2 (return, fall-through)", into)
	}
}

func TestCFGSelectClauses(t *testing.T) {
	g := buildCFG(t, "select {\ncase <-ch:\n_ = 1\ncase ch <- n:\n_ = 2\n}")
	if got := len(g.Entry.Succs); got != 2 {
		t.Fatalf("select entry has %d successors, want 2 (one per clause)", got)
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	// With a default clause there is no head→join fall-through edge.
	g := buildCFG(t, "switch n {\ncase 1:\n_ = 1\ndefault:\n_ = 2\n}")
	if got := len(g.Entry.Succs); got != 2 {
		t.Fatalf("switch-with-default entry has %d successors, want 2", got)
	}
}

func TestCFGReversePostOrder(t *testing.T) {
	g := buildCFG(t, "for i := 0; i < n; i++ {\nif c {\n_ = 1\n}\n}\n_ = 2")
	order := g.ReversePostOrder()
	pos := make(map[int]int, len(order))
	for i, b := range order {
		pos[b.Index] = i
	}
	// Over forward edges, every predecessor sorts before its successor.
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Back {
				continue
			}
			pi, ok1 := pos[b.Index]
			si, ok2 := pos[e.To.Index]
			if ok1 && ok2 && pi >= si {
				t.Fatalf("RPO violates forward edge %d → %d", b.Index, e.To.Index)
			}
		}
	}
	if pos[g.Entry.Index] != 0 {
		t.Fatalf("entry is not first in RPO")
	}
}

func TestWalkNodeSkipsFuncLitBodies(t *testing.T) {
	g := buildCFG(t, "go func() {\ninner := 1\n_ = inner\n}()\n_ = 2")
	var idents []string
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			walkNode(n, func(m ast.Node) {
				if id, ok := m.(*ast.Ident); ok {
					idents = append(idents, id.Name)
				}
			})
		}
	}
	if strings.Contains(strings.Join(idents, ","), "inner") {
		t.Fatalf("walkNode descended into a function literal body: %v", idents)
	}
}
