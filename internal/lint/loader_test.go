package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// writeTree materializes a file tree under a temp root and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// findPkg returns the loaded package with the given import path, or nil.
func findPkg(prog *Program, path string) *Package {
	for _, pkg := range prog.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// TestLoadExternalTestPackage checks that in-package _test.go files merge
// into their library unit while package foo_test files become a separate
// ".test"-suffixed unit that can import the library.
func TestLoadExternalTestPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go":               "package a\n\nfunc Answer() int { return 42 }\n",
		"a/a_internal_test.go": "package a\n\nfunc double() int { return Answer() * 2 }\n",
		"a/a_ext_test.go":      "package a_test\n\nimport \"tmpmod/a\"\n\nvar _ = a.Answer\n",
	})
	prog, err := Load(root, "tmpmod")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	lib := findPkg(prog, "tmpmod/a")
	if lib == nil {
		t.Fatalf("library package not loaded; have %v", pkgPaths(prog))
	}
	if len(lib.Files) != 2 {
		t.Fatalf("library unit has %d files, want 2 (source + in-package test)", len(lib.Files))
	}
	ext := findPkg(prog, "tmpmod/a.test")
	if ext == nil {
		t.Fatalf("external test package not loaded; have %v", pkgPaths(prog))
	}
	if len(ext.Files) != 1 {
		t.Fatalf("external test unit has %d files, want 1", len(ext.Files))
	}
	// The external unit type-checked against the live library unit, so its
	// import resolved to the same *types.Package.
	if ext.Types.Name() != "a_test" {
		t.Fatalf("external unit package name = %q, want a_test", ext.Types.Name())
	}
}

// TestLoadBuildConstraints checks that files excluded by //go:build
// constraints or by _GOOS filename suffixes are dropped before
// type-checking: every skipped file below redeclares Dup, so loading any
// of them would fail the type check.
func TestLoadBuildConstraints(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	root := writeTree(t, map[string]string{
		"b/keep.go": "package b\n\nfunc Dup() int { return 1 }\n",
		// Release tags are assumed satisfied, so this file stays in.
		"b/keep_go1.go": "//go:build go1.18\n\npackage b\n\nfunc Other() int { return Dup() }\n",
		// Custom tags evaluate false.
		"b/skip_tagged.go": "//go:build sometag\n\npackage b\n\nfunc Dup() int { return 2 }\n",
		// "ignore" is just another unsatisfied tag.
		"b/skip_ignore.go": "//go:build ignore\n\npackage b\n\nfunc Dup() int { return 3 }\n",
		// Legacy +build syntax is honored too.
		"b/skip_legacy.go": "// +build sometag\n\npackage b\n\nfunc Dup() int { return 4 }\n",
		// Filename platform suffix for a different GOOS.
		"b/skip_" + otherOS + ".go": "package b\n\nfunc Dup() int { return 5 }\n",
	})
	prog, err := Load(root, "tmpmod")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	pkg := findPkg(prog, "tmpmod/b")
	if pkg == nil {
		t.Fatalf("package b not loaded; have %v", pkgPaths(prog))
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("package b has %d files, want 2 (keep.go, keep_go1.go)", len(pkg.Files))
	}
}

// TestLoadHostConstraintKept checks the positive direction: a constraint
// naming the host platform keeps the file.
func TestLoadHostConstraintKept(t *testing.T) {
	root := writeTree(t, map[string]string{
		"c/c.go":    "package c\n\nfunc V() int { return host() }\n",
		"c/host.go": "//go:build " + runtime.GOOS + "\n\npackage c\n\nfunc host() int { return 1 }\n",
	})
	prog, err := Load(root, "tmpmod")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	pkg := findPkg(prog, "tmpmod/c")
	if pkg == nil || len(pkg.Files) != 2 {
		t.Fatalf("host-constrained file was dropped")
	}
}

func pkgPaths(prog *Program) []string {
	var out []string
	for _, p := range prog.Pkgs {
		out = append(out, p.Path)
	}
	return out
}
