package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

var guardedRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// runGuarded enforces "// guarded by mu" field annotations in the
// concurrent packages: an annotated field may only be touched by a
// function that acquires that mutex (a `x.mu.Lock()` / `x.mu.RLock()`
// call in its own body), or by a method whose name ends in "Locked" —
// the repo's convention for helpers whose caller holds the lock.
//
// Function literals are checked independently of their enclosing
// function: a closure can escape onto another goroutine, so an outer
// Lock() does not cover it.
func runGuarded(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	if !inPkgs(pkg.Path, cfg.GuardedPkgs) {
		return nil
	}

	// Map each annotated field to the mutex field guarding it.
	guards := collectGuards(pkg)
	if len(guards) == 0 {
		return nil
	}

	var out []Diagnostic
	report := func(pos token.Pos, field, mu string) {
		out = append(out, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Pass: "guarded-field",
			Message: "access to " + field + " (guarded by " + mu +
				") without holding the lock; acquire it or name the helper ...Locked",
		})
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncBody(pkg, fn.Body, strings.HasSuffix(fn.Name.Name, "Locked"), guards, report)
		}
	}
	return out
}

// guardInfo describes one annotated field.
type guardInfo struct {
	mutex *types.Var // the guarding mutex field
	name  string     // annotation text, for messages
}

// collectGuards scans struct declarations for "guarded by" comments and
// resolves each annotation to the named mutex field of the same struct.
func collectGuards(pkg *Package) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// First resolve every field name in this struct so annotations
			// can point at their mutex.
			fieldByName := make(map[string]*types.Var)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						fieldByName[name.Name] = v
					}
				}
			}
			for _, f := range st.Fields.List {
				m := matchGuardComment(f)
				if m == "" {
					continue
				}
				mu, ok := fieldByName[m]
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{mutex: mu, name: m}
					}
				}
			}
			return true
		})
	}
	return guards
}

func matchGuardComment(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFuncBody verifies every guarded-field access in one function body.
// Nested function literals are peeled off and checked on their own.
func checkFuncBody(pkg *Package, body *ast.BlockStmt, isLockedHelper bool,
	guards map[*types.Var]guardInfo, report func(token.Pos, string, string)) {

	held := make(map[*types.Var]bool)
	var lits []*ast.FuncLit
	// Pass 1: find lock acquisitions in this body (not in nested literals).
	walkShallow(body, func(n ast.Node) {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[muSel]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					held[v] = true
				}
			}
		}
	})
	// Pass 2: check accesses.
	walkShallow(body, func(n ast.Node) {
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		g, guarded := guards[v]
		if !guarded {
			return
		}
		if isLockedHelper || held[g.mutex] {
			return
		}
		report(sel.Sel.Pos(), v.Name(), g.name)
	})
	for _, lit := range lits {
		checkFuncBody(pkg, lit.Body, false, guards, report)
	}
}

// walkShallow visits nodes in body but does not descend into function
// literals (it still reports the literal itself so callers can recurse).
func walkShallow(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		visit(n)
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}
