// Package lint is adore's repo-specific static analyzer. It enforces the
// structural invariants the Adore safety argument leans on but that Go's
// type system cannot express: cache-tree nodes are immutable after
// insertion (append-only tree), the model core is deterministic (replayable
// from a seed), concurrent state is accessed under its annotated mutex, and
// switches over protocol enums are exhaustive.
//
// The analyzer is intentionally dependency-free: it loads and type-checks
// the module with nothing but go/parser and go/types, so go.mod stays
// empty and the checker can run anywhere the toolchain runs (CI included,
// via `go run ./cmd/adore-lint ./...`).
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked compilation unit: a directory's library (or
// main) package with its in-package test files merged in, or an external
// _test package.
type Package struct {
	// Path is the import path ("adore/internal/core"). External test
	// packages get the ".test" suffix appended so units stay unique.
	Path string
	// Dir is the directory the files came from.
	Dir string
	// Files is the parsed syntax, comments included.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module: every package, type-checked, in a stable
// (import-topological, then lexical) order.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// cg caches the module call graph (built on first use).
	cg *CallGraph
}

// Lookup returns the types.Package for an import path loaded in this
// program, or nil.
func (p *Program) Lookup(path string) *types.Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg.Types
		}
	}
	return nil
}

// unit is a pre-typecheck package candidate.
type unit struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal import paths
	test    bool     // external _test package
}

// Load parses and type-checks every package under root, treating root as
// the module with the given module path. Directories named "testdata",
// hidden directories, and vendored trees are skipped. In-package _test.go
// files are merged into their package; external _test packages are checked
// as separate units after all library packages.
func Load(root, modPath string) (*Program, error) {
	fset := token.NewFileSet()
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk %s: %w", root, err)
	}
	sort.Strings(dirs)

	var units []*unit
	for _, dir := range dirs {
		us, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}

	ordered, err := topoSort(units)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: fset}
	local := make(map[string]*types.Package)
	imp := &chainImporter{fset: fset, local: local}
	for _, u := range ordered {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, _ := conf.Check(strings.TrimSuffix(u.path, ".test"), fset, u.files, info)
		if firstErr != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", u.path, firstErr)
		}
		if !u.test {
			local[u.path] = tpkg
		}
		prog.Pkgs = append(prog.Pkgs, &Package{
			Path:  u.path,
			Dir:   u.dir,
			Files: u.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return prog, nil
}

// parseDir parses one directory into up to two units: the package (with
// in-package tests merged) and an external _test package.
func parseDir(fset *token.FileSet, root, modPath, dir string) ([]*unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	var base, ext []*ast.File
	var baseName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !fileNameMatchesHost(name) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		if !constraintsMatchHost(f) {
			continue
		}
		pkgName := f.Name.Name
		switch {
		case strings.HasSuffix(pkgName, "_test"):
			ext = append(ext, f)
		default:
			if baseName == "" {
				baseName = pkgName
			} else if pkgName != baseName {
				return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, baseName, pkgName)
			}
			base = append(base, f)
		}
	}
	var units []*unit
	if len(base) > 0 {
		units = append(units, &unit{path: path, dir: dir, files: base, imports: internalImports(base, modPath)})
	}
	if len(ext) > 0 {
		units = append(units, &unit{path: path + ".test", dir: dir, files: ext,
			imports: internalImports(ext, modPath), test: true})
	}
	return units, nil
}

// fileNameMatchesHost applies the go tool's _GOOS / _GOARCH /
// _GOOS_GOARCH filename convention: a file whose name carries an explicit
// platform suffix for a different platform is excluded from the load (the
// toolchain would not compile it, so type-checking it would double-declare
// symbols its host-platform sibling also declares).
func fileNameMatchesHost(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	prev := ""
	if len(parts) >= 3 {
		prev = parts[len(parts)-2]
	}
	switch {
	case knownArch[last]:
		if last != runtime.GOARCH {
			return false
		}
		return prev == "" || !knownOS[prev] || prev == runtime.GOOS
	case knownOS[last]:
		return last == runtime.GOOS
	}
	return true
}

// constraintsMatchHost evaluates a file's //go:build (or legacy // +build)
// constraint for the host platform. Tags recognized: the host GOOS and
// GOARCH, "unix" on unix-like hosts, and go1.N release tags (all assumed
// satisfied — the toolchain running the linter is at least the module's
// minimum). Everything else — "ignore", custom tags — evaluates false, so
// tagged-out fixtures and generators are skipped the way `go build` skips
// them.
func constraintsMatchHost(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			ok := expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH:
					return true
				case tag == "unix":
					return unixOS[runtime.GOOS]
				case strings.HasPrefix(tag, "go1"):
					return true
				}
				return false
			})
			if !ok {
				return false
			}
		}
	}
	return true
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// internalImports lists the module-internal import paths of files.
func internalImports(files []*ast.File, modPath string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders units so every unit follows its module-internal imports.
// External test units sort after all library units.
func topoSort(units []*unit) ([]*unit, error) {
	byPath := make(map[string]*unit, len(units))
	for _, u := range units {
		if !u.test {
			byPath[u.path] = u
		}
	}
	var out []*unit
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(u *unit) error
	visit = func(u *unit) error {
		switch state[u.path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", u.path)
		case 2:
			return nil
		}
		state[u.path] = 1
		for _, dep := range u.imports {
			if d, ok := byPath[dep]; ok && d != u {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[u.path] = 2
		out = append(out, u)
		return nil
	}
	var libs, tests []*unit
	for _, u := range units {
		if u.test {
			tests = append(tests, u)
		} else {
			libs = append(libs, u)
		}
	}
	sort.Slice(libs, func(i, j int) bool { return libs[i].path < libs[j].path })
	sort.Slice(tests, func(i, j int) bool { return tests[i].path < tests[j].path })
	for _, u := range libs {
		if err := visit(u); err != nil {
			return nil, err
		}
	}
	out = append(out, tests...)
	return out, nil
}

// chainImporter serves module-internal packages from the load in progress
// and everything else (the standard library) from the toolchain, falling
// back to compiling from source when export data is unavailable.
type chainImporter struct {
	fset   *token.FileSet
	local  map[string]*types.Package
	std    types.Importer
	source types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	if c.std == nil {
		c.std = importer.Default()
	}
	if p, err := c.std.Import(path); err == nil {
		return p, nil
	}
	if c.source == nil {
		c.source = importer.ForCompiler(c.fset, "source", nil)
	}
	return c.source.Import(path)
}

// FindModuleRoot walks up from dir to the directory containing go.mod and
// returns it plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
