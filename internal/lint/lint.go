package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the pass that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Config selects what each pass targets. The zero value is unusable; use
// DefaultConfig for the adore repo. Fixture tests override the package
// paths to point at their testdata module.
type Config struct {
	// CorePkg is the package defining the cache tree (immutable-cache and
	// exhaustive-switch look here for the node type and its enums).
	CorePkg string
	// CacheTypes names the struct types in CorePkg whose fields are
	// append-only after construction.
	CacheTypes []string
	// CacheConstructors names the functions/methods in CorePkg allowed to
	// write cache fields (constructors and tree-shape mutators).
	CacheConstructors []string
	// ModelPkgs are the deterministic-model packages: no wall clocks, no
	// global randomness, no map-iteration-ordered output.
	ModelPkgs []string
	// GuardedPkgs are the packages where "guarded by" field annotations
	// are enforced.
	GuardedPkgs []string
	// EnumPkgs are the packages whose local enum switches must be
	// exhaustive. Empty means every loaded module package.
	EnumPkgs []string
	// PureCorePkgs are the sans-IO protocol cores: no time/rand/sync
	// imports, no goroutines, no channels — all effects flow through
	// Ready batches. Enforced transitively through the call graph.
	PureCorePkgs []string
	// PurityAllowCalls lists dynamic call sites ("Type.Field") the
	// pure-core tier sanctions — caller-supplied hooks like the jitter
	// source, whose impurity is owned outside the core.
	PurityAllowCalls []string
	// EffectOrder configures the Ready-execution drivers whose
	// persist-before-externalize order and storage-error discipline are
	// proven by the effect-order pass.
	EffectOrder []EffectOrderConfig
}

// DefaultConfig returns the configuration for the adore module itself.
func DefaultConfig() Config {
	return Config{
		CorePkg:           "adore/internal/core",
		CacheTypes:        []string{"Cache"},
		CacheConstructors: []string{"NewTree", "AddLeaf", "InsertBtw"},
		ModelPkgs: []string{
			"adore/internal/core",
			"adore/internal/explore",
			"adore/internal/config",
			"adore/internal/refine",
			"adore/internal/types",
			"adore/internal/invariant",
			"adore/internal/ado",
			"adore/internal/cado",
			"adore/internal/raftnet",
			"adore/internal/sraft",
			"adore/internal/raft/raftcore",
		},
		GuardedPkgs: []string{
			"adore/internal/raft",
			"adore/internal/kvstore",
			"adore/internal/raft/transport",
			"adore/internal/raft/cluster",
			"adore/internal/chaos",
		},
		PureCorePkgs:     []string{"adore/internal/raft/raftcore"},
		PurityAllowCalls: []string{"Config.Jitter"},
		EffectOrder: []EffectOrderConfig{{
			Pkg:            "adore/internal/raft",
			StorageIface:   "Storage",
			PersistMethods: []string{"SaveState", "SaveSnapshot", "SaveEntries"},
			SendIface:      "Transport",
			SendMethods:    []string{"Send"},
			FailStops:      []string{"failStopLocked"},
		}},
	}
}

// A pass inspects one package and appends diagnostics.
type pass struct {
	name string
	run  func(*Program, *Package, Config) []Diagnostic
}

func allPasses() []pass {
	return []pass{
		{"immutable-cache", runImmutable},
		{"deterministic-model", runDeterminism},
		{"lockset", runLockset},
		{"exhaustive-switch", runExhaustive},
		{"transitive-purity", runPurity},
		{"effect-order", runEffectOrder},
	}
}

// PassNames lists the registered pass names in registry order.
func PassNames() []string {
	ps := allPasses()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	return names
}

// RunAll executes every pass over every package in prog and returns the
// diagnostics sorted by position.
func RunAll(prog *Program, cfg Config) []Diagnostic {
	ds, _ := RunPasses(prog, cfg, nil)
	return ds
}

// RunPasses executes the named passes (nil or empty = all) over every
// package in prog and returns the diagnostics sorted by position. Unknown
// names are an error so a typo cannot silently disable a check.
func RunPasses(prog *Program, cfg Config, names []string) ([]Diagnostic, error) {
	selected := allPasses()
	if len(names) > 0 {
		byName := make(map[string]pass)
		for _, p := range selected {
			byName[p.name] = p
		}
		selected = selected[:0]
		for _, n := range names {
			p, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("lint: unknown pass %q (have %s)", n, strings.Join(PassNames(), ", "))
			}
			selected = append(selected, p)
		}
	}
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, p := range selected {
			out = append(out, p.run(prog, pkg, cfg)...)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// inPkgs reports whether path (optionally with the ".test" suffix of an
// external test unit) matches one of the listed import paths.
func inPkgs(path string, pkgs []string) bool {
	base := strings.TrimSuffix(path, ".test")
	for _, p := range pkgs {
		if base == p {
			return true
		}
	}
	return false
}
