package lint

import (
	"path/filepath"
	"testing"
)

// checkFixture loads a testdata module, runs the passes cfg enables, and
// verifies the diagnostics against the fixture's `// want` annotations —
// both directions: every seeded violation must be caught, and nothing
// unannotated may fire.
func checkFixture(t *testing.T, name string, cfg Config) {
	t.Helper()
	prog, err := Load(filepath.Join("testdata", name), "fix")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	diags := RunAll(prog, cfg)
	if len(diags) == 0 {
		t.Fatalf("fixture %s produced no diagnostics; the pass is inert", name)
	}
	for _, p := range CheckExpectations(prog, diags) {
		t.Error(p)
	}
}

// off disables the exhaustive pass for fixtures that are not about it
// (an empty EnumPkgs means "every package").
var off = []string{"fix/disabled"}

func TestImmutableCacheFixture(t *testing.T) {
	checkFixture(t, "immutable", Config{
		CorePkg:           "fix/core",
		CacheTypes:        []string{"Cache"},
		CacheConstructors: []string{"NewTree", "AddLeaf"},
		EnumPkgs:          off,
	})
}

func TestDeterministicModelFixture(t *testing.T) {
	checkFixture(t, "determinism", Config{
		ModelPkgs: []string{"fix/model"},
		EnumPkgs:  off,
	})
}

func TestLocksetFixture(t *testing.T) {
	checkFixture(t, "lockset", Config{
		GuardedPkgs: []string{"fix/srv"},
		EnumPkgs:    off,
	})
}

func TestTransitivePurityFixture(t *testing.T) {
	checkFixture(t, "purity", Config{
		PureCorePkgs:     []string{"fix/pure"},
		ModelPkgs:        []string{"fix/model"},
		PurityAllowCalls: []string{"Config.Jitter"},
		EnumPkgs:         off,
	})
}

func TestEffectOrderFixture(t *testing.T) {
	checkFixture(t, "effectorder", Config{
		EffectOrder: []EffectOrderConfig{{
			Pkg:            "fix/driver",
			StorageIface:   "Storage",
			PersistMethods: []string{"SaveState", "SaveSnapshot", "SaveEntries"},
			SendIface:      "Transport",
			SendMethods:    []string{"Send"},
			FailStops:      []string{"failStop"},
		}, {
			Pkg: "fix/lease",
			Requires: []PrecededBy{{
				GateIface:      "LeaseClock",
				GateMethods:    []string{"Extend"},
				WitnessIface:   "AckWindow",
				WitnessMethods: []string{"Observe"},
				Why: "a lease extension not backed by an observed quorum ack " +
					"fabricates freshness and can serve stale reads",
			}},
		}},
		EnumPkgs: off,
	})
}

func TestExhaustiveSwitchFixture(t *testing.T) {
	checkFixture(t, "exhaustive", Config{
		EnumPkgs: []string{"fix/enum"},
	})
}

// TestRepoClean runs every pass over the real module and requires zero
// diagnostics — the same bar CI's `go run ./cmd/adore-lint ./...` enforces.
func TestRepoClean(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(prog, DefaultConfig()) {
		t.Errorf("%s", d)
	}
}
