package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runDeterminism keeps the model packages replayable: a model-checking run
// (BFS or seeded random walk) must be a pure function of its seed, so the
// model layer may not read wall clocks, may not use the global (unseeded)
// math/rand source, and may not let map iteration order leak into output
// or results.
//
// Map ranges are fine for aggregation (max, set union, counting) and for
// the collect-then-sort idiom; they are flagged when the body prints,
// appends to an outer slice that is never sorted afterwards in the same
// block, or returns a value that depends on which element iteration
// happened to visit.
func runDeterminism(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	if !inPkgs(pkg.Path, cfg.ModelPkgs) {
		return nil
	}
	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Pos: prog.Fset.Position(pos), Pass: "deterministic-model", Message: msg})
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkForbiddenCall(pkg.Info, call, report)
			}
			// Statement lists are where a range and its follow-up sort live
			// side by side.
			switch b := n.(type) {
			case *ast.BlockStmt:
				checkStmtList(pkg.Info, b.List, report)
			case *ast.CaseClause:
				checkStmtList(pkg.Info, b.Body, report)
			case *ast.CommClause:
				checkStmtList(pkg.Info, b.Body, report)
			}
			return true
		})
	}
	return out
}

// checkForbiddenCall flags wall-clock reads and global-source randomness.
func checkForbiddenCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			report(call.Pos(), "time."+fn.Name()+" in a model package; model runs must replay from a seed")
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors for explicitly-seeded sources are the sanctioned
			// way to get randomness.
		default:
			report(call.Pos(), "global rand."+fn.Name()+" in a model package; use an explicitly seeded *rand.Rand")
		}
	}
}

// checkStmtList scans a statement list for map ranges whose iteration
// order can escape.
func checkStmtList(info *types.Info, stmts []ast.Stmt, report func(token.Pos, string)) {
	for i, stmt := range stmts {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapRange(info, rs) {
			continue
		}
		checkMapRange(info, rs, stmts[i+1:], report)
	}
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body. rest is the remainder of the
// enclosing statement list, searched for a sanctioning sort call.
func checkMapRange(info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt, report func(token.Pos, string)) {
	loopVars := make(map[*types.Var]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if v, ok := info.Defs[id].(*types.Var); ok {
				loopVars[v] = true
			}
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if isPrintCall(info, st) {
				report(st.Pos(), "printing inside a map range; iteration order leaks into output — sort keys first")
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if refersTo(info, res, loopVars) {
					report(st.Pos(), "returning a value chosen by map iteration order; sort keys and iterate deterministically")
					break
				}
			}
		case *ast.AssignStmt:
			for ri, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || ri >= len(st.Lhs) {
					continue
				}
				if isMapIndexWrite(info, st.Lhs[ri]) {
					// Writes keyed by map index land in the same slot
					// whatever the visit order.
					continue
				}
				target := rootVar(info, st.Lhs[ri])
				if target == nil || loopVars[target] {
					continue
				}
				if target.Pos() >= rs.Body.Pos() && target.Pos() < rs.Body.End() {
					// Per-iteration accumulator, reset each pass.
					continue
				}
				if !sortedAfter(info, rest, target) {
					report(st.Pos(), "appending to "+target.Name()+" in map iteration order with no sort afterwards; sort before use")
				}
			}
		}
		return true
	})
}

// isPrintCall matches the fmt print family and io-style Write methods —
// anything that emits bytes in loop order.
func isPrintCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Sprint", "Sprintf", "Sprintln":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// refersTo reports whether expr mentions any of the given variables, or
// any local derived inside the loop (conservatively, any non-constant
// identifier declared in the range body's scope chain under it). Constant
// results ("return true") never depend on iteration order.
func refersTo(info *types.Info, expr ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMapIndexWrite reports whether the lvalue writes through a map index.
func isMapIndexWrite(info *types.Info, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[e.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return true
				}
			}
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// rootVar resolves the base identifier of an lvalue to its variable.
func rootVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			v, _ := info.Uses[e].(*types.Var)
			if v == nil {
				v, _ = info.Defs[e].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether a later statement in the same list passes
// the accumulated slice to sort or slices.
func sortedAfter(info *types.Info, rest []ast.Stmt, target *types.Var) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok ||
				(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if rootVar(info, arg) == target {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
