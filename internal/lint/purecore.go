package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// runPureCore enforces the sans-IO discipline on the pure protocol cores
// (Config.PureCorePkgs, in this repo the raftcore package): the core may
// not import clocks, randomness, or synchronization, may not launch
// goroutines, and may not touch channels. Everything the core wants done
// leaves it through a Ready batch; everything it learns enters through
// Step/Tick/Propose. That boundary is what makes the simulator's replay
// and the runtime driver execute literally the same state machine, so the
// pass guards the refinement argument, not style.
//
// Test files are exempt: the discipline binds the shipped core, and tests
// drive it from outside where clocks and helpers are fair game.
func runPureCore(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	if !inPkgs(pkg.Path, cfg.PureCorePkgs) {
		return nil
	}
	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Pos: prog.Fset.Position(pos), Pass: "pure-core", Message: msg})
	}

	for _, file := range pkg.Files {
		if strings.HasSuffix(prog.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if msg := forbiddenCoreImport(path); msg != "" {
				report(imp.Pos(), msg)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				report(st.Pos(), "go statement in a pure core package; the core must stay single-threaded and deterministic")
			case *ast.SelectStmt:
				report(st.Pos(), "select in a pure core package; the core has no concurrency to multiplex")
			case *ast.SendStmt:
				report(st.Pos(), "channel send in a pure core package; effects leave the core only through Ready")
			case *ast.UnaryExpr:
				if st.Op == token.ARROW {
					report(st.Pos(), "channel receive in a pure core package; inputs enter the core only through Step and Tick")
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[st.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						report(st.Pos(), "ranging over a channel in a pure core package; inputs enter the core only through Step and Tick")
					}
				}
			case *ast.ChanType:
				report(st.Pos(), "channel type in a pure core package; the core communicates only through Ready batches")
			}
			return true
		})
	}
	return out
}

// forbiddenCoreImport maps an import path banned in pure core packages to
// its diagnostic, or returns "" for an allowed import. Import-level
// rejection subsumes call-level checks: time.Now, rand.Intn, sync.Mutex
// and friends cannot appear without the import.
func forbiddenCoreImport(path string) string {
	switch path {
	case "time":
		return "import of time in a pure core package; the core counts caller-supplied logical ticks"
	case "math/rand", "math/rand/v2":
		return "import of " + path + " in a pure core package; randomness enters only via Config.Jitter"
	case "sync", "sync/atomic":
		return "import of " + path + " in a pure core package; the caller serializes all access to the core"
	}
	return ""
}
