// Package util is an UNCHECKED helper package: the purity fixture's pure
// and model packages reach its impurities only transitively, so every
// diagnostic about it must appear at the frontier call site with a
// witness chain — never inside this file.
package util

import (
	"sync"
	"time"
)

// Stamp returns the wall clock through one more hop, so witness chains
// have an interior link (Stamp → now → time.Now).
func Stamp() int64 { return now().UnixNano() }

func now() time.Time { return time.Now() }

var mu sync.Mutex

// Locked runs f under a package mutex — hidden synchronization.
func Locked(f func()) {
	mu.Lock()
	defer mu.Unlock()
	if f != nil {
		f()
	}
}

// Scale is pure; calls to it must not be flagged.
func Scale(x, k int) int { return x * k }
