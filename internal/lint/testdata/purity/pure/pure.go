// Package pure is the pure-core tier fixture: direct impurities, banned
// imports, transitive reach through the unchecked util package, refused
// dynamic calls, and the allowlisted jitter hook.
package pure

import (
	"fix/util"
	"sync" // want "import of sync in a pure core package"
)

// Config carries the caller-supplied jitter hook — the one sanctioned
// dynamic call (PurityAllowCalls: Config.Jitter).
type Config struct {
	Jitter func() int
}

// Core is the fixture state machine.
type Core struct {
	mu    sync.Mutex
	ticks int
	cfg   Config
}

// Tick advances logical time with the allowlisted jitter hook — allowed.
func (c *Core) Tick() { c.ticks += 1 + c.cfg.Jitter() }

// Scaled uses a pure helper — allowed.
func (c *Core) Scaled() int { return util.Scale(c.ticks, 3) }

// Stamp reaches the wall clock through the helper package — forbidden,
// reported at the frontier call with the witness chain.
func (c *Core) Stamp() int64 {
	return util.Stamp() // want `call to util.Stamp reaches time.Now \(util.Stamp → util.now → time.Now\)`
}

// Guarded hides synchronization inside the core — forbidden.
func (c *Core) Guarded() {
	c.mu.Lock() // want `\(sync.Mutex\).Lock in a pure core package`
	c.ticks++
	c.mu.Unlock() // want `\(sync.Mutex\).Unlock in a pure core package`
}

// Apply calls an arbitrary func value — the core tier refuses what it
// cannot trace.
func Apply(f func() int) int {
	return f() // want "dynamic call through f in a pure core package"
}

// Spawn launches a goroutine — forbidden.
func Spawn(f func()) {
	go f() // want "go statement in a pure core package"
}

// Notify pushes an effect out through a channel — forbidden.
func Notify(ch chan int) {
	ch <- 1 // want "channel send in a pure core package"
}

// Wait multiplexes on channels — forbidden twice over.
func Wait(ch chan int) int {
	select { // want "select statement in a pure core package"
	case v := <-ch: // want "channel receive in a pure core package"
		return v
	}
}

// Drain consumes a channel as an input stream — forbidden.
func Drain(ch chan int) int {
	total := 0
	for v := range ch { // want "range over a channel in a pure core package"
		total += v
	}
	return total
}
