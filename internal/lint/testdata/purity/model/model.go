// Package model is the model-tier fixture: explicitly seeded randomness
// is sanctioned, while wall clocks and synchronization reached through
// helper packages — and any concurrency — break replayability.
package model

import (
	"fix/util"
	"math/rand"
)

// Roll draws from an explicitly seeded source — sanctioned.
func Roll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Stamp reaches the wall clock through the helper package — forbidden.
func Stamp() int64 {
	return util.Stamp() // want `call to util.Stamp reaches time.Now`
}

// Exclusive reaches hidden synchronization — forbidden.
func Exclusive() {
	util.Locked(nil) // want `call to util.Locked reaches \(sync.Mutex\).Lock`
}

// Spawn forks the model — replay must stay single-threaded.
func Spawn(f func()) {
	go f() // want "go statement in a model package"
}

// Scaled uses a pure helper — allowed.
func Scaled(x int) int { return util.Scale(x, 2) }
