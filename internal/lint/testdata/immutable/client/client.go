// Package client seeds cross-package violations for the immutable-cache
// fixture.
package client

import "fix/core"

// Rewire illegally mutates a cache reached through the tree.
func Rewire(t *core.Tree) {
	c := t.Get(1)
	c.Parent = 7 // want "write to cache field Parent"
	c.Time++     // want "write to cache field Time"
}

// Alias hands out a mutable pointer into a shared cache.
func Alias(t *core.Tree) *int {
	return &t.Get(1).Time // want "write to cache field Time"
}

// Inspect reads freely and may mutate a local value copy.
func Inspect(t *core.Tree) int {
	cp := *t.Get(1)
	cp.Time = 0
	return cp.Time + t.Get(1).Parent
}
