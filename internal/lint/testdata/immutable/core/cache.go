// Package core is the immutable-cache fixture: a miniature cache tree
// with sanctioned constructors and a seeded in-package violation.
package core

// Cache is a fixture tree node.
type Cache struct {
	ID     int
	Parent int
	Time   int
}

// Tree holds caches.
type Tree struct {
	nodes map[int]*Cache
	next  int
}

// NewTree builds a tree with a root; constructor writes are allowed.
func NewTree() *Tree {
	t := &Tree{nodes: make(map[int]*Cache)}
	c := &Cache{}
	c.ID = 1
	t.nodes[1] = c
	t.next = 2
	return t
}

// AddLeaf inserts a child; writes before insertion are allowed.
func AddLeaf(t *Tree, parent int) *Cache {
	c := &Cache{Parent: parent}
	c.ID = t.next
	t.next++
	t.nodes[c.ID] = c
	return c
}

// Get returns a node.
func (t *Tree) Get(id int) *Cache { return t.nodes[id] }

// Touch mutates a node after insertion — forbidden even in this package.
func (t *Tree) Touch(id int) {
	t.nodes[id].Time++ // want "write to cache field Time"
}
