// Package pure is the pure-core fixture: clocks, randomness, locks,
// goroutines, and channels beside the sanctioned tick/jitter idiom.
package pure

import (
	"math/rand" // want "import of math/rand in a pure core package"
	"sync"      // want "import of sync in a pure core package"
	"time"      // want "import of time in a pure core package"
)

// Core drags a mutex into the state machine — flagged at the sync import.
type Core struct {
	mu    sync.Mutex
	ticks int
}

// Now reads the wall clock — flagged at the time import.
func (c *Core) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now()
}

// Jitter draws from the global source — flagged at the math/rand import.
func Jitter() int { return rand.Intn(10) }

// Spawn launches a goroutine — forbidden.
func Spawn(f func()) {
	go f() // want "go statement in a pure core package"
}

// Notify pushes an effect out through a channel — forbidden.
func Notify(ch chan int) { // want "channel type in a pure core package"
	ch <- 1 // want "channel send in a pure core package"
}

// Wait multiplexes on a channel — forbidden twice over.
func Wait(ch chan int) int { // want "channel type in a pure core package"
	select { // want "select in a pure core package"
	case v := <-ch: // want "channel receive in a pure core package"
		return v
	}
}

// Drain consumes a channel as an input stream — forbidden.
func Drain(ch chan int) int { // want "channel type in a pure core package"
	total := 0
	for v := range ch { // want "ranging over a channel in a pure core package"
		total += v
	}
	return total
}

// Tick is the sanctioned idiom: logical time advanced by the caller, with
// the randomized share injected as a jitter closure.
func (c *Core) Tick(jitter func() int) { c.ticks += 1 + jitter() }
