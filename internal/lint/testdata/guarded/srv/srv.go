// Package srv is the guarded-field fixture: an annotated struct with
// locked, Locked-suffixed, and unguarded accesses.
package srv

import "sync"

// Counter is a shared counter.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc acquires the lock — allowed.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads without the lock — forbidden.
func (c *Counter) Peek() int {
	return c.n // want `access to n \(guarded by mu\) without holding the lock`
}

// bumpLocked follows the caller-holds-lock naming convention — allowed.
func (c *Counter) bumpLocked(d int) {
	c.n += d
}

// Bump wraps bumpLocked under the lock.
func (c *Counter) Bump(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked(d)
}

// Leak spawns a goroutine whose closure touches n without its own lock —
// forbidden: the enclosing lock does not cover an escaping closure.
func (c *Counter) Leak() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "access to n"
	}()
}

// Safe spawns a goroutine that locks for itself — allowed.
func (c *Counter) Safe() {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}
