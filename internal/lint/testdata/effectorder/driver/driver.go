// Package driver is the effect-order fixture: a miniature Ready-execution
// driver with the contract-abiding path plus the mutants the pass must
// catch — send-before-persist, apply-before-persist, dropped storage
// errors, and checked-but-never-halting error handling.
package driver

// HardState is the durable term/vote/commit triple.
type HardState struct{ Term, Vote, Commit int }

// Entry is one log entry.
type Entry struct {
	Term int
	Data []byte
}

// Message is one outbound protocol message.
type Message struct{ To int }

// Snapshot is a durable state-machine image replacing a log prefix.
type Snapshot struct {
	Index int
	Data  []byte
}

// Ready is one batch of core effects.
type Ready struct {
	HardState *HardState
	Snapshot  *Snapshot
	Entries   []Entry
	Messages  []Message
}

// Storage persists raft state; its methods are the persist events.
type Storage interface {
	SaveState(hs HardState) error
	SaveSnapshot(s Snapshot) error
	SaveEntries(first int, es []Entry) error
}

// Transport sends protocol messages; Send is the externalize event.
type Transport interface {
	Send(m Message)
}

// Node is the fixture driver.
type Node struct {
	storage   Storage
	transport Transport
	applyCh   chan []Entry
	stopped   bool
	err       error
}

// failStop is the configured fail-stop halt.
func (n *Node) failStop(err error) {
	n.stopped = true
	n.err = err
}

// crash reaches the halt through one more hop.
func (n *Node) crash(err error) { n.failStop(err) }

// flushMsgs delegates the sends; callers inherit its externalize effect.
func (n *Node) flushMsgs(ms []Message) {
	for _, m := range ms {
		n.transport.Send(m)
	}
}

// Good executes one batch in contract order — clean.
func (n *Node) Good(rd Ready) {
	if rd.HardState != nil {
		if err := n.storage.SaveState(*rd.HardState); err != nil {
			n.failStop(err)
			return
		}
	}
	if rd.Snapshot != nil {
		if err := n.storage.SaveSnapshot(*rd.Snapshot); err != nil {
			n.failStop(err)
			return
		}
	}
	if len(rd.Entries) > 0 {
		if err := n.storage.SaveEntries(1, rd.Entries); err != nil {
			n.failStop(err)
			return
		}
	}
	for _, m := range rd.Messages {
		n.transport.Send(m)
	}
	n.applyCh <- rd.Entries
}

// AckBeforeImage acks the snapshot install before the image is durable:
// a crash after the ack leaves the leader believing a base the follower
// cannot recover — the snapshot twin of acked⇒durable.
func (n *Node) AckBeforeImage(rd Ready) {
	for _, m := range rd.Messages {
		n.transport.Send(m)
	}
	if err := n.storage.SaveSnapshot(*rd.Snapshot); err != nil { // want "Storage.SaveSnapshot persists after Transport.Send"
		n.failStop(err)
		return
	}
}

// TruncateOnFailedImage drops the snapshot persist error: the caller goes
// on to truncate a WAL whose replacement image never landed.
func (n *Node) TruncateOnFailedImage(rd Ready) {
	n.storage.SaveSnapshot(*rd.Snapshot) // want "error from Storage.SaveSnapshot is dropped"
}

// SendFirst externalizes before persisting — the acked⇒durable mutant.
func (n *Node) SendFirst(rd Ready) {
	for _, m := range rd.Messages {
		n.transport.Send(m)
	}
	if err := n.storage.SaveState(*rd.HardState); err != nil { // want "Storage.SaveState persists after Transport.Send"
		n.failStop(err)
		return
	}
}

// ApplyFirst hands committed entries to the applier before they are
// durable.
func (n *Node) ApplyFirst(rd Ready) {
	n.applyCh <- rd.Entries
	if err := n.storage.SaveEntries(1, rd.Entries); err != nil { // want "Storage.SaveEntries persists after a channel send"
		n.failStop(err)
		return
	}
}

// LateViaHelper persists after delegating the sends to a helper — the
// summary propagation case.
func (n *Node) LateViaHelper(rd Ready) {
	n.flushMsgs(rd.Messages)
	if err := n.storage.SaveState(*rd.HardState); err != nil { // want `after a call to \(driver.Node\).flushMsgs`
		n.failStop(err)
		return
	}
}

// Fire never looks at the persist error — dropped.
func (n *Node) Fire(hs HardState) {
	n.storage.SaveState(hs) // want "error from Storage.SaveState is dropped"
}

// Blank discards the persist error explicitly — still dropped.
func (n *Node) Blank(hs HardState) {
	_ = n.storage.SaveState(hs) // want "error from Storage.SaveState is dropped"
}

// Logged checks the error but only records it — the node keeps running on
// unpersisted state.
func (n *Node) Logged(hs HardState) {
	if err := n.storage.SaveState(hs); err != nil { // want "never reaches the fail-stop halt"
		n.err = err
	}
}

// Passthrough propagates the error to its caller — clean.
func (n *Node) Passthrough(hs HardState) error {
	return n.storage.SaveState(hs)
}

// Deep halts through a helper that reaches failStop — clean.
func (n *Node) Deep(hs HardState) {
	if err := n.storage.SaveState(hs); err != nil {
		n.crash(err)
	}
}

// Pump runs batch after batch: sends from iteration N legally precede
// iteration N+1's persist — each iteration is a fresh batch, which is why
// the may-analysis cuts loop back edges. Clean.
func (n *Node) Pump(batches []Ready) {
	for _, rd := range batches {
		n.Good(rd)
	}
}

// Start launches the pump goroutine before persisting: `go` operands run
// concurrently and are not in-line effects. Clean.
func (n *Node) Start(hs HardState) {
	go n.Pump(nil)
	if err := n.storage.SaveState(hs); err != nil {
		n.failStop(err)
		return
	}
}

// Shutdown defers the close: it runs at exit, after the persist in the
// return statement, not at its syntactic position. Clean.
func (n *Node) Shutdown(hs HardState) error {
	defer close(n.applyCh)
	return n.storage.SaveState(hs)
}
