// Package lease is the observation-order fixture for the lease read
// path: on every control-flow path, extending the lease clock for a peer
// must be preceded by observing that peer's quorum ack — an extension
// that skips the observation fabricates the freshness a lease must
// prove, and a leader could serve stale reads past a successor's
// commits. The good paths establish the witness before the gate; the
// mutants knock the check out on at least one path and must each be
// caught by lint-teeth.
package lease

// Msg is one append response from a peer.
type Msg struct {
	From    int
	Seq     uint64
	Success bool
}

// AckWindow validates a response as a current-term quorum ack; Observe
// is the witness event.
type AckWindow interface {
	Observe(m Msg) bool
}

// LeaseClock banks per-peer ack freshness; Extend is the gated event.
type LeaseClock interface {
	Extend(peer int, tick int64)
}

// Leader is the fixture driver.
type Leader struct {
	acks  AckWindow
	lease LeaseClock
	ticks int64
}

// Good observes the ack before extending — clean.
func (l *Leader) Good(m Msg) {
	if !l.acks.Observe(m) {
		return
	}
	l.lease.Extend(m.From, l.ticks)
}

// GoodBothArms extends in both branches of a decision made after the
// observation — clean (the witness dominates both arms).
func (l *Leader) GoodBothArms(m Msg) {
	if !l.acks.Observe(m) {
		return
	}
	if m.Success {
		l.lease.Extend(m.From, l.ticks)
	} else {
		l.lease.Extend(m.From, l.ticks-1)
	}
}

// note delegates the observation; callers inherit its witness.
func (l *Leader) note(m Msg) { l.acks.Observe(m) }

// GoodViaHelper observes through a helper before extending — the
// summary-propagation case. Clean.
func (l *Leader) GoodViaHelper(m Msg) {
	l.note(m)
	l.lease.Extend(m.From, l.ticks)
}

// Unconditional extends before validating the response at all — the
// knocked-out-check mutant.
func (l *Leader) Unconditional(m Msg) {
	l.lease.Extend(m.From, l.ticks) // want "LeaseClock.Extend without a preceding AckWindow observation"
	l.acks.Observe(m)
}

// OneArm observes on only one branch: the other path reaches the
// extension with nothing observed.
func (l *Leader) OneArm(m Msg, fast bool) {
	if fast {
		l.acks.Observe(m)
	}
	l.lease.Extend(m.From, l.ticks) // want "LeaseClock.Extend without a preceding AckWindow observation"
}

// AfterLoop observes inside a loop that may run zero times; the
// extension after it is unwitnessed on the skip path.
func (l *Leader) AfterLoop(ms []Msg) {
	for _, m := range ms {
		l.acks.Observe(m)
	}
	l.lease.Extend(0, l.ticks) // want "LeaseClock.Extend without a preceding AckWindow observation"
}

// Assumes extends on its caller's behalf without observing anything
// itself: the obligation is per-function — a helper cannot assume its
// caller observed.
func (l *Leader) Assumes(peer int) {
	l.lease.Extend(peer, l.ticks) // want "LeaseClock.Extend without a preceding AckWindow observation"
}

// Deferred defers the observation: it runs at function exit, after the
// extension, not at its syntactic position.
func (l *Leader) Deferred(m Msg) {
	defer l.acks.Observe(m)
	l.lease.Extend(m.From, l.ticks) // want "LeaseClock.Extend without a preceding AckWindow observation"
}
