// Package enum is the exhaustive-switch fixture: full, partial, silent,
// and loud switches over a small enum.
package enum

// Kind enumerates fixture node kinds.
type Kind int

const (
	// KindA, KindB, KindC are the three kinds.
	KindA Kind = iota
	KindB
	KindC
)

// Name covers every constant — allowed.
func Name(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

// Partial misses KindC — forbidden.
func Partial(k Kind) string {
	switch k { // want "switch over Kind misses KindC"
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return ""
}

// Silent swallows unknown kinds in an empty default — forbidden.
func Silent(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default: // want "empty default in switch over Kind"
	}
	return ""
}

// Loud fails loudly on unknown kinds — allowed.
func Loud(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		panic("enum: unknown kind")
	}
}
