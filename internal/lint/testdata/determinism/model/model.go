// Package model is the deterministic-model fixture: wall clocks, global
// randomness, and order-leaking map ranges next to their sanctioned
// counterparts.
package model

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock — forbidden.
func Stamp() int64 {
	return time.Now().Unix() // want "time.Now in a model package"
}

// Roll uses the global rand source — forbidden.
func Roll() int {
	return rand.Intn(6) // want "global rand.Intn"
}

// SeededRoll draws from an explicitly seeded source — allowed.
func SeededRoll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Dump prints in map iteration order — forbidden.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "printing inside a map range|fmt.Println in a model package"
	}
}

// Pick returns whichever key iteration visits first — forbidden.
func Pick(m map[string]int) string {
	for k := range m {
		return k // want "returning a value chosen by map iteration order"
	}
	return ""
}

// Has returns a constant from inside the range — allowed.
func Has(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Collect accumulates in iteration order with no sort — forbidden.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appending to out in map iteration order"
	}
	return out
}

// Sorted is the sanctioned collect-then-sort idiom — allowed.
func Sorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Max aggregates order-independently — allowed.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Invert writes through map indices — allowed (slot-addressed, not
// order-addressed).
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
