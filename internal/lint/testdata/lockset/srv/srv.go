// Package srv is the lockset fixture: an annotated struct exercised by
// locked, Locked-suffixed, early-unlocked, and unguarded accesses. The
// flow-sensitive cases (early explicit Unlock, loops that leak the lock,
// bare calls to Locked helpers) are the v2 teeth.
package srv

import "sync"

// Counter is a shared counter.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc acquires the lock — allowed.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads without the lock — forbidden.
func (c *Counter) Peek() int {
	return c.n // want `access to n \(guarded by mu\) without holding the lock`
}

// bumpLocked follows the caller-holds-lock naming convention — allowed.
func (c *Counter) bumpLocked(d int) {
	c.n += d
}

// Bump wraps bumpLocked under the lock — allowed.
func (c *Counter) Bump(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked(d)
}

// Race calls the Locked helper with nothing held — forbidden.
func (c *Counter) Race(d int) {
	c.bumpLocked(d) // want "call to bumpLocked requires holding mu"
}

// Handler lets the Locked method escape its lock scope — forbidden.
func (c *Counter) Handler() func(int) {
	return c.bumpLocked // want "call to bumpLocked requires holding mu"
}

// Snapshot releases early and keeps reading — the unlock-then-read window.
func (c *Counter) Snapshot() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // want `access to n \(guarded by mu\) after mu.Unlock\(\)`
}

// Deferred releases only at exit, so the late read is covered — allowed.
// (Regression: a deferred Unlock must not count as an early release.)
func (c *Counter) Deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 10 {
		return 10
	}
	return c.n
}

// TryInc unlocks on the refusing branch only — allowed: the fall-through
// path still holds the lock.
func (c *Counter) TryInc() bool {
	c.mu.Lock()
	if c.n < 0 {
		c.mu.Unlock()
		return false
	}
	c.n++
	c.mu.Unlock()
	return true
}

// Pump re-acquires each iteration — allowed.
func (c *Counter) Pump(k int) {
	for i := 0; i < k; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// Leaky holds the lock only for the first iteration: after the back edge
// the body runs unprotected — forbidden.
func (c *Counter) Leaky(k int) {
	c.mu.Lock()
	for i := 0; i < k; i++ {
		c.n++ // want `access to n \(guarded by mu\) after mu.Unlock\(\)`
		c.mu.Unlock()
	}
}

// Leak spawns a goroutine whose closure touches n without its own lock —
// forbidden: the enclosing lock does not cover an escaping closure.
func (c *Counter) Leak() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "access to n"
	}()
}

// Safe spawns a goroutine that locks for itself — allowed.
func (c *Counter) Safe() {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}
