package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// runExhaustive checks switches over the module's enum types (named
// integer or string types with at least two package-level constants, like
// core.Kind). A switch must either list every constant or carry a default
// with a non-empty body; an empty default silently swallows new enum
// values, which is exactly how a new cache kind would bypass the safety
// rules unnoticed.
func runExhaustive(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	enums := collectEnums(prog, cfg)
	if len(enums) == 0 {
		return nil
	}

	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Pos: prog.Fset.Position(pos), Pass: "exhaustive-switch", Message: msg})
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			enum, ok := enums[named.Obj()]
			if !ok {
				return true
			}
			checkSwitch(pkg, sw, named.Obj().Name(), enum, report)
			return true
		})
	}
	return out
}

// enumValues maps a constant's exact value to one representative name.
type enumValues map[string]string

// collectEnums finds enum types across the loaded module: named types with
// a basic integer/string underlying type and >= 2 package-level constants.
func collectEnums(prog *Program, cfg Config) map[*types.TypeName]enumValues {
	enums := make(map[*types.TypeName]enumValues)
	for _, pkg := range prog.Pkgs {
		if strings.HasSuffix(pkg.Path, ".test") {
			continue
		}
		if len(cfg.EnumPkgs) > 0 && !inPkgs(pkg.Path, cfg.EnumPkgs) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named, ok := types.Unalias(c.Type()).(*types.Named)
			if !ok || named.Obj().Pkg() != pkg.Types {
				continue
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
				continue
			}
			vals := enums[named.Obj()]
			if vals == nil {
				vals = make(enumValues)
				enums[named.Obj()] = vals
			}
			key := c.Val().ExactString()
			if prev, ok := vals[key]; !ok || name < prev {
				vals[key] = name
			}
		}
	}
	// An enum needs at least two distinct values; single-constant types
	// are sentinels, not enums.
	for tn, vals := range enums {
		if len(vals) < 2 {
			delete(enums, tn)
		}
	}
	return enums
}

func checkSwitch(pkg *Package, sw *ast.SwitchStmt, typeName string, enum enumValues, report func(token.Pos, string)) {
	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			report(defaultClause.Pos(), "empty default in switch over "+typeName+
				"; handle unknown values loudly (return an error or panic)")
		}
		return
	}

	var missing []string
	for val, name := range enum {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	report(sw.Pos(), "switch over "+typeName+" misses "+strings.Join(missing, ", ")+
		"; add the cases or a default that fails loudly")
}
