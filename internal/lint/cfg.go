package lint

import (
	"go/ast"
)

// cfg.go is the shared control-flow layer for the interprocedural passes
// (effect-order, lockset). It builds a basic-block graph for one function
// body from nothing but the AST — no golang.org/x/tools dependency, so the
// module keeps its empty go.mod.
//
// A block holds the AST nodes executed straight-line, in order. Structured
// statements are decomposed: an if contributes its init and condition to
// the current block and branches into then/else blocks; a for contributes
// a head block (re-evaluated each iteration) whose body edge loops back; a
// select contributes one block per communication clause. Only the node
// kinds that carry effects are stored (simple statements and the
// evaluated-here fragments of compound ones), so analyses can walk
// block.Nodes with ast.Inspect without re-entering nested statement trees.
// Function literals are NOT descended into — each literal is its own CFG,
// built by the analysis that needs it.
//
// Loop back edges are marked so forward (may) analyses can run one pass
// over the DAG, while must analyses (lockset) include them and iterate to
// a fixpoint.

// Edge is one control-flow successor. Back marks a loop back edge.
type Edge struct {
	To   *Block
	Back bool
}

// Block is one basic block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// CFG is the control-flow graph of one function body. Entry is Blocks[0];
// Exit is the single synthetic exit block every return reaches. Deferred
// calls run on function exit, so their call expressions are appended to
// the Exit block (in LIFO order) rather than at their syntactic position.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// cfgBuilder carries the state of one build.
type cfgBuilder struct {
	g *CFG
	// breakTargets/continueTargets are stacks of the innermost enclosing
	// targets; labels map labeled loops/switches to their targets.
	breakTargets    []*Block
	continueTargets []*Block
	labelBreak      map[string]*Block
	labelContinue   map[string]*Block
	// contExit maps each loop's continue target to that loop's exit block,
	// so back edges can be given forward shadow edges (see edge comments).
	contExit map[*Block]*Block
	defers   []ast.Node
}

// BuildCFG constructs the CFG of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:             &CFG{},
		labelBreak:    make(map[string]*Block),
		labelContinue: make(map[string]*Block),
		contExit:      make(map[*Block]*Block),
	}
	entry := b.newBlock()
	b.g.Entry = entry
	exit := b.newBlock() // allocated early so returns can target it
	b.g.Exit = exit
	last := b.stmtList(entry, body.List)
	if last != nil {
		b.edge(last, exit, false)
	}
	// Deferred calls execute on every exit path, LIFO.
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.defers[i])
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, back bool) {
	from.Succs = append(from.Succs, Edge{To: to, Back: back})
}

// backEdge wires a loop back edge plus a forward "shadow" edge to the
// loop's exit. The shadow edge represents the real path back-edge →
// head → exit, so a may-analysis that cuts back edges (each iteration is
// a fresh Ready batch) still sees loop-body facts after the loop. A must
// analysis iterates through back edges anyway, so the shadow changes
// nothing for it.
func (b *cfgBuilder) backEdge(from, to, loopExit *Block) {
	b.edge(from, to, true)
	b.edge(from, loopExit, false)
}

// stmtList threads a statement list through cur, returning the block the
// list falls out of (nil if every path left — return/break/continue).
func (b *cfgBuilder) stmtList(cur *Block, stmts []ast.Stmt) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Dead code after a terminating statement; give it its own
			// unreachable block so its nodes still exist for other tools,
			// but nothing flows in.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt adds one statement, returning the fall-through block (nil if the
// statement never falls through).
func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, st.List)

	case *ast.LabeledStmt:
		return b.labeled(cur, st)

	case *ast.IfStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		cur.Nodes = append(cur.Nodes, st.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB, false)
		thenOut := b.stmtList(thenB, st.Body.List)
		var elseOut *Block
		hasElse := st.Else != nil
		if hasElse {
			elseB := b.newBlock()
			b.edge(cur, elseB, false)
			elseOut = b.stmt(elseB, st.Else)
		}
		join := b.newBlock()
		if !hasElse {
			b.edge(cur, join, false)
		}
		if thenOut != nil {
			b.edge(thenOut, join, false)
		}
		if elseOut != nil {
			b.edge(elseOut, join, false)
		}
		return join

	case *ast.ForStmt:
		return b.forStmt(cur, st, "")

	case *ast.RangeStmt:
		return b.rangeStmt(cur, st, "")

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		if st.Tag != nil {
			cur.Nodes = append(cur.Nodes, st.Tag)
		}
		return b.switchClauses(cur, st.Body.List, "")

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		cur.Nodes = append(cur.Nodes, st.Assign)
		return b.switchClauses(cur, st.Body.List, "")

	case *ast.SelectStmt:
		return b.selectStmt(cur, st, "")

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		b.edge(cur, b.g.Exit, false)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, st)

	case *ast.DeferStmt:
		// The call's function and arguments are evaluated here; the call
		// itself runs at function exit.
		cur.Nodes = append(cur.Nodes, st)
		b.defers = append(b.defers, st.Call)
		return cur

	default:
		// Simple statements: expr, assign, incdec, send, go, decl, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// labeled handles a labeled statement by pre-registering the label's break
// (and, for loops, continue) targets before building the body.
func (b *cfgBuilder) labeled(cur *Block, st *ast.LabeledStmt) *Block {
	name := st.Label.Name
	switch inner := st.Stmt.(type) {
	case *ast.ForStmt:
		return b.forStmt(cur, inner, name)
	case *ast.RangeStmt:
		return b.rangeStmt(cur, inner, name)
	case *ast.SwitchStmt:
		if inner.Init != nil {
			cur.Nodes = append(cur.Nodes, inner.Init)
		}
		if inner.Tag != nil {
			cur.Nodes = append(cur.Nodes, inner.Tag)
		}
		return b.switchClauses(cur, inner.Body.List, name)
	case *ast.TypeSwitchStmt:
		if inner.Init != nil {
			cur.Nodes = append(cur.Nodes, inner.Init)
		}
		cur.Nodes = append(cur.Nodes, inner.Assign)
		return b.switchClauses(cur, inner.Body.List, name)
	case *ast.SelectStmt:
		return b.selectStmt(cur, inner, name)
	default:
		return b.stmt(cur, st.Stmt)
	}
}

func (b *cfgBuilder) forStmt(cur *Block, st *ast.ForStmt, label string) *Block {
	if st.Init != nil {
		cur.Nodes = append(cur.Nodes, st.Init)
	}
	head := b.newBlock()
	b.edge(cur, head, false)
	if st.Cond != nil {
		head.Nodes = append(head.Nodes, st.Cond)
	}
	exit := b.newBlock()
	if st.Cond != nil {
		b.edge(head, exit, false)
	}
	// continue re-runs Post (when present) before looping to head.
	contTarget := head
	var post *Block
	if st.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, st.Post)
		b.backEdge(post, head, exit)
		contTarget = post
	}
	b.contExit[contTarget] = exit
	b.pushLoop(exit, contTarget, label)
	body := b.newBlock()
	b.edge(head, body, false)
	out := b.stmtList(body, st.Body.List)
	if out != nil {
		if post != nil {
			b.edge(out, post, false)
		} else {
			b.backEdge(out, head, exit)
		}
	}
	b.popLoop(label)
	delete(b.contExit, contTarget)
	return exit
}

func (b *cfgBuilder) rangeStmt(cur *Block, st *ast.RangeStmt, label string) *Block {
	head := b.newBlock()
	b.edge(cur, head, false)
	// The ranged expression and per-iteration key/value assignment live in
	// the head (re-entered each iteration).
	head.Nodes = append(head.Nodes, st.X)
	exit := b.newBlock()
	b.edge(head, exit, false)
	b.contExit[head] = exit
	b.pushLoop(exit, head, label)
	body := b.newBlock()
	b.edge(head, body, false)
	out := b.stmtList(body, st.Body.List)
	if out != nil {
		b.backEdge(out, head, exit)
	}
	b.popLoop(label)
	delete(b.contExit, head)
	return exit
}

// switchClauses wires a (type) switch's case clauses between head and a
// join block. Case expressions are evaluated on entry to their clause.
func (b *cfgBuilder) switchClauses(head *Block, clauses []ast.Stmt, label string) *Block {
	join := b.newBlock()
	// break inside a switch targets the join.
	b.breakTargets = append(b.breakTargets, join)
	if label != "" {
		b.labelBreak[label] = join
	}
	hasDefault := false
	var caseBlocks []*Block
	var caseOuts []*Block
	for _, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock()
		b.edge(head, cb, false)
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		out := b.stmtList(cb, cc.Body)
		caseBlocks = append(caseBlocks, cb)
		caseOuts = append(caseOuts, out)
	}
	for i, out := range caseOuts {
		if out == nil {
			continue
		}
		// fallthrough transfers to the next clause's block.
		if ft := endsInFallthrough(clauses, i); ft && i+1 < len(caseBlocks) {
			b.edge(out, caseBlocks[i+1], false)
		} else {
			b.edge(out, join, false)
		}
	}
	if !hasDefault {
		b.edge(head, join, false)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
	return join
}

func endsInFallthrough(clauses []ast.Stmt, i int) bool {
	cc, ok := clauses[i].(*ast.CaseClause)
	if !ok || len(cc.Body) == 0 {
		return false
	}
	br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func (b *cfgBuilder) selectStmt(cur *Block, st *ast.SelectStmt, label string) *Block {
	join := b.newBlock()
	b.breakTargets = append(b.breakTargets, join)
	if label != "" {
		b.labelBreak[label] = join
	}
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock()
		b.edge(cur, cb, false)
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
		}
		if out := b.stmtList(cb, cc.Body); out != nil {
			b.edge(out, join, false)
		}
	}
	// A select with no clauses blocks forever; otherwise every path runs
	// exactly one clause, so there is no direct cur→join edge.
	if len(st.Body.List) == 0 {
		b.edge(cur, join, false)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
	return join
}

func (b *cfgBuilder) pushLoop(brk, cont *Block, label string) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelContinue, label)
	}
}

// continueEdge wires a continue jump: a back edge to the loop's continue
// target, with the shadow edge to that loop's exit.
func (b *cfgBuilder) continueEdge(cur, target *Block) {
	if exit, ok := b.contExit[target]; ok {
		b.backEdge(cur, target, exit)
	} else {
		b.edge(cur, target, true)
	}
}

func (b *cfgBuilder) branch(cur *Block, st *ast.BranchStmt) *Block {
	switch st.Tok.String() {
	case "break":
		if st.Label != nil {
			if t, ok := b.labelBreak[st.Label.Name]; ok {
				b.edge(cur, t, false)
				return nil
			}
		} else if n := len(b.breakTargets); n > 0 {
			b.edge(cur, b.breakTargets[n-1], false)
			return nil
		}
	case "continue":
		if st.Label != nil {
			if t, ok := b.labelContinue[st.Label.Name]; ok {
				b.continueEdge(cur, t)
				return nil
			}
		} else if n := len(b.continueTargets); n > 0 {
			b.continueEdge(cur, b.continueTargets[n-1])
			return nil
		}
	case "goto":
		// No structured target; be conservative and route to exit so the
		// block does not silently fall through.
		b.edge(cur, b.g.Exit, false)
		return nil
	case "fallthrough":
		// Handled by switchClauses; as a lone statement it ends the block.
		return cur
	}
	return cur
}

// ReversePostOrder returns the blocks in reverse post-order over forward
// (non-back) edges — the natural visit order for a single-pass forward
// analysis on the loop-free skeleton.
func (g *CFG) ReversePostOrder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var order []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			if !e.Back {
				visit(e.To)
			}
		}
		order = append(order, b)
	}
	visit(g.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// walkNode visits the expression tree of one block node in evaluation
// order (pre-order), without descending into nested function literals.
// The literal itself is still reported so analyses can handle it.
func walkNode(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		visit(m)
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}
