package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// effectorder.go proves the Ready-execution contract on the driver
// package: on every forward control-flow path, persistence of the
// HardState and log entries (Storage.SaveState / SaveEntries) happens
// before any externalizing effect — a Transport.Send, a read-barrier
// resolution, an apply handoff, or any other channel send/close. This is
// the acked⇒durable obligation: once a message or an apply leaves the
// node, a crash must not be able to forget the state that justified it.
//
// The check is a may-analysis over the shared CFG: a single forward pass
// (back edges skipped — a persist in the *next* loop iteration legally
// follows the previous iteration's sends) tracks whether an externalizing
// effect may already have happened; a persist reached with that bit set is
// a contract violation, reported with the effect that got ahead of it.
// Effects propagate through same-package static calls via {persists,
// externalizes} function summaries, so a driver that delegates to helpers
// is held to the same order. Calls launched with `go` run concurrently and
// are not in-line events; deferred calls take effect at function exit.
//
// The same pass enforces the error discipline that makes persistence
// meaningful: every Storage persist call's error must be returned,
// panicked on, or routed to the fail-stop halt (Config FailStops, e.g.
// failStopLocked). A dropped or merely-logged storage error would let the
// node keep acking on top of unpersisted state.
//
// Configurable Requires obligations add the dual direction: a gated
// effect (extending the lease clock) that must be PRECEDED by a witness
// (a quorum-ack observation) on every path — see PrecededBy.

// EffectOrderConfig targets one package's Ready-execution driver.
type EffectOrderConfig struct {
	// Pkg is the driver package's import path.
	Pkg string
	// StorageIface / PersistMethods name the persistence interface and its
	// persisting methods ("Storage", SaveState/SaveEntries).
	StorageIface   string
	PersistMethods []string
	// SendIface / SendMethods name the externalizing transport interface
	// ("Transport", Send). Channel sends and closes always externalize.
	SendIface   string
	SendMethods []string
	// FailStops names the functions that halt the node on a storage error;
	// a persist error must reach one of them (or a panic, or a return).
	FailStops []string
	// Requires lists observation-order obligations checked alongside the
	// persist-before-externalize contract (see PrecededBy).
	Requires []PrecededBy
}

// PrecededBy is one observation-order obligation: every call to a gated
// method must be preceded, on every forward control-flow path through the
// calling function, by a call to one of the witness methods. This is the
// dual of the persist-before-externalize rule — a MUST-analysis (the
// witness holds only where every path established it) instead of a MAY
// one. It encodes the lease-read freshness rule: extending the lease
// clock for a peer is only sound after observing that peer's quorum ack
// in the current term — an extension reached on any path that skipped
// the observation fabricates the very freshness a lease must prove.
// Witnesses propagate through same-package static calls (a helper that
// observes discharges its caller), but the obligation itself is
// per-function: a helper that extends assuming its caller observed is a
// violation at its own extension site.
type PrecededBy struct {
	// GateIface / GateMethods name the gated event ("LeaseClock".Extend).
	GateIface   string
	GateMethods []string
	// WitnessIface / WitnessMethods name the observation that must come
	// first ("AckWindow".Observe).
	WitnessIface   string
	WitnessMethods []string
	// Why is appended to the diagnostic: the one-line safety argument.
	Why string
}

// effectSummary is one function's interprocedural effect bits.
type effectSummary struct {
	persists     bool
	externalizes bool
	callees      []*types.Func // same-package static callees (not via go)
}

// runEffectOrder is the effect-order pass entry point.
func runEffectOrder(prog *Program, pkg *Package, cfg Config) []Diagnostic {
	var out []Diagnostic
	if strings.HasSuffix(pkg.Path, ".test") {
		return nil // the contract binds the shipped driver, not its tests
	}
	for _, eoc := range cfg.EffectOrder {
		if pkg.Path != eoc.Pkg {
			continue
		}
		a := &effectAnalysis{prog: prog, pkg: pkg, eoc: eoc}
		a.computeSummaries()
		report := func(pos token.Pos, msg string) {
			out = append(out, Diagnostic{Pos: prog.Fset.Position(pos), Pass: "effect-order", Message: msg})
		}
		for _, file := range pkg.Files {
			if strings.HasSuffix(prog.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a.checkOrder(fd, report)
				a.checkErrDiscipline(fd.Body, report)
				for i := range eoc.Requires {
					a.checkPreceded(fd, &eoc.Requires[i], report)
				}
			}
		}
	}
	return out
}

type effectAnalysis struct {
	prog    *Program
	pkg     *Package
	eoc     EffectOrderConfig
	sums    map[*types.Func]*effectSummary
	witSums map[*PrecededBy]map[*types.Func]bool
}

// ifaceCall reports whether call is a dynamic call to iface.method for one
// of the listed methods, returning its display name ("Storage.SaveState").
func (a *effectAnalysis) ifaceCall(call *ast.CallExpr, iface string, methods []string) string {
	cs := resolveCall(a.pkg, call, false)
	if !cs.Dynamic {
		return ""
	}
	for _, m := range methods {
		if cs.DynamicName == iface+"."+m {
			return cs.DynamicName
		}
	}
	return ""
}

func (a *effectAnalysis) persistCall(call *ast.CallExpr) string {
	return a.ifaceCall(call, a.eoc.StorageIface, a.eoc.PersistMethods)
}

func (a *effectAnalysis) sendCall(call *ast.CallExpr) string {
	return a.ifaceCall(call, a.eoc.SendIface, a.eoc.SendMethods)
}

// closeCall reports whether call is the close builtin.
func (a *effectAnalysis) closeCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := a.pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// samePkgCallee returns the statically resolved same-package callee of
// call, or nil.
func (a *effectAnalysis) samePkgCallee(call *ast.CallExpr) *types.Func {
	cs := resolveCall(a.pkg, call, false)
	if cs.Callee == nil || cs.Dynamic || cs.Callee.Pkg() != pkgTypes(a.pkg) {
		return nil
	}
	return cs.Callee
}

func pkgTypes(pkg *Package) *types.Package { return pkg.Types }

// computeSummaries builds the {persists, externalizes} fixpoint over the
// package's declared functions.
func (a *effectAnalysis) computeSummaries() {
	a.sums = make(map[*types.Func]*effectSummary)
	for fn, node := range a.prog.CallGraph().Nodes {
		if node.Pkg != a.pkg {
			continue
		}
		sum := &effectSummary{}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				return false // a defined-but-not-called literal has no effect
			case *ast.GoStmt:
				return false // runs concurrently, not an in-line effect
			case *ast.SendStmt:
				sum.externalizes = true
			case *ast.CallExpr:
				if a.persistCall(e) != "" {
					sum.persists = true
				}
				if a.sendCall(e) != "" || a.closeCall(e) {
					sum.externalizes = true
				}
				if callee := a.samePkgCallee(e); callee != nil {
					sum.callees = append(sum.callees, callee)
				}
			}
			return true
		})
		a.sums[fn] = sum
	}
	for changed := true; changed; {
		changed = false
		for _, sum := range a.sums {
			for _, callee := range sum.callees {
				cs, ok := a.sums[callee]
				if !ok {
					continue
				}
				if cs.persists && !sum.persists {
					sum.persists = true
					changed = true
				}
				if cs.externalizes && !sum.externalizes {
					sum.externalizes = true
					changed = true
				}
			}
		}
	}
}

// mayState is the forward dataflow fact: has an externalizing effect
// possibly happened, and which one (for the message).
type mayState struct {
	extern bool
	why    string
}

func (s *mayState) externalize(why string) {
	if !s.extern {
		s.extern = true
		s.why = why
	}
}

func (s *mayState) merge(src mayState) {
	if src.extern && !s.extern {
		s.extern = true
		s.why = src.why
	}
}

// checkOrder runs the may-analysis over one function.
func (a *effectAnalysis) checkOrder(fd *ast.FuncDecl, report func(token.Pos, string)) {
	g := BuildCFG(fd.Body)
	in := make([]mayState, len(g.Blocks))
	reached := make([]bool, len(g.Blocks))
	reached[g.Entry.Index] = true
	// Reverse post-order over forward edges visits every predecessor of a
	// block before the block itself, so one pass over the loop-free
	// skeleton converges.
	for _, blk := range g.ReversePostOrder() {
		if !reached[blk.Index] {
			continue
		}
		st := in[blk.Index]
		for _, node := range blk.Nodes {
			var skip *ast.CallExpr
			switch d := node.(type) {
			case *ast.DeferStmt:
				skip = d.Call // takes effect at exit; its node is in the exit block
			case *ast.GoStmt:
				skip = d.Call // runs concurrently
			}
			a.walkEvents(node, skip, &st, report)
		}
		for _, e := range blk.Succs {
			if e.Back {
				continue
			}
			if !reached[e.To.Index] {
				in[e.To.Index] = st
				reached[e.To.Index] = true
			} else {
				in[e.To.Index].merge(st)
			}
		}
	}
}

// walkEvents interprets one block node's effects against st. skip is a
// call expression whose own event must not fire here (deferred or
// go-launched); its arguments still evaluate in place.
func (a *effectAnalysis) walkEvents(node ast.Node, skip *ast.CallExpr, st *mayState, report func(token.Pos, string)) {
	walkNode(node, func(m ast.Node) {
		switch e := m.(type) {
		case *ast.SendStmt:
			st.externalize("a channel send")
		case *ast.CallExpr:
			if e == skip {
				return
			}
			if name := a.persistCall(e); name != "" {
				if st.extern {
					report(e.Pos(), name+" persists after "+st.why+" on this path; "+
						"the Ready contract requires persistence before sends, read resolution, and apply")
				}
				return
			}
			if name := a.sendCall(e); name != "" {
				st.externalize(name)
				return
			}
			if a.closeCall(e) {
				st.externalize("a channel close")
				return
			}
			if callee := a.samePkgCallee(e); callee != nil {
				sum := a.sums[callee]
				if sum == nil {
					return
				}
				if sum.persists && st.extern {
					report(e.Pos(), "call to "+FuncDisplayName(callee)+" (which persists state) after "+
						st.why+" on this path; the Ready contract requires persistence before sends, read resolution, and apply")
				}
				if sum.externalizes {
					st.externalize("a call to " + FuncDisplayName(callee) + " (which externalizes)")
				}
			}
		}
	})
}

// checkErrDiscipline verifies every Storage persist call's error is
// handled: returned, panicked on, or routed to a fail-stop halt. scope
// recursion keeps each function literal a separate return/flow scope.
func (a *effectAnalysis) checkErrDiscipline(scope *ast.BlockStmt, report func(token.Pos, string)) {
	ast.Inspect(scope, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			a.checkErrDiscipline(e.Body, report)
			return false
		case *ast.CallExpr:
			if name := a.persistCall(e); name != "" {
				a.checkOneErr(scope, e, name, report)
			}
		}
		return true
	})
}

// checkOneErr applies the error discipline to one persist call.
func (a *effectAnalysis) checkOneErr(scope *ast.BlockStmt, call *ast.CallExpr, name string, report func(token.Pos, string)) {
	path := pathTo(scope, call)
	var stmt ast.Stmt
	for i := len(path) - 1; i >= 0; i-- {
		if s, ok := path[i].(ast.Stmt); ok {
			stmt = s
			break
		}
	}
	dropped := func() {
		report(call.Pos(), "error from "+name+" is dropped; a failed persist must fail-stop the node, "+
			"not leave it acking on unpersisted state")
	}
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return // propagated to the caller
	case *ast.ExprStmt, *ast.GoStmt, *ast.DeferStmt:
		dropped()
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 || ast.Unparen(s.Rhs[0]) != call {
			return // call feeds a larger expression; assume the consumer handles it
		}
		errIdent, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident)
		if !ok {
			return
		}
		if errIdent.Name == "_" {
			dropped()
			return
		}
		obj := a.pkg.Info.Defs[errIdent]
		if obj == nil {
			obj = a.pkg.Info.Uses[errIdent]
		}
		if obj == nil {
			return
		}
		if !a.errReachesHalt(scope, obj, errIdent) {
			report(call.Pos(), "error from "+name+" never reaches the fail-stop halt; route it to "+
				strings.Join(a.eoc.FailStops, "/")+", panic, or return it")
		}
	case *ast.IfStmt:
		// The call sits in the condition (err != nil inline); the branches
		// must halt.
		if !a.blockHalts(s) {
			report(call.Pos(), "error from "+name+" is checked but the failure branch does not halt; "+
				"route it to "+strings.Join(a.eoc.FailStops, "/")+", panic, or return it")
		}
	}
}

// errReachesHalt reports whether some use of the error object is terminal:
// returned, passed to panic or a fail-stop-reaching call, or tested by an
// if whose branches halt.
func (a *effectAnalysis) errReachesHalt(scope *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	used := false
	halts := false
	ast.Inspect(scope, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || a.pkg.Info.Uses[id] != obj {
			return true
		}
		used = true
		path := pathTo(scope, id)
		for i := len(path) - 1; i >= 0; i-- {
			switch anc := path[i].(type) {
			case *ast.ReturnStmt:
				halts = true
				return true
			case *ast.CallExpr:
				if a.callHalts(anc) {
					halts = true
					return true
				}
			case *ast.IfStmt:
				// Only a use inside the condition makes the if a check of
				// this error.
				if anc.Cond.Pos() <= id.Pos() && id.Pos() <= anc.Cond.End() && a.blockHalts(anc) {
					halts = true
					return true
				}
			case *ast.FuncLit:
				return true // different scope; its own pass judges it
			}
		}
		return true
	})
	return used && halts
}

// callHalts reports whether call is panic or reaches a fail-stop.
func (a *effectAnalysis) callHalts(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := a.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	cs := resolveCall(a.pkg, call, false)
	if cs.Callee == nil || cs.Dynamic {
		return false
	}
	return a.reachesFailStop(cs.Callee)
}

// blockHalts reports whether an if statement's branches contain a return,
// a panic, or a fail-stop-reaching call.
func (a *effectAnalysis) blockHalts(s *ast.IfStmt) bool {
	found := false
	check := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch e := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.CallExpr:
				if a.callHalts(e) {
					found = true
					return false
				}
			}
			return true
		})
	}
	check(s.Body)
	if s.Else != nil {
		check(s.Else)
	}
	return found
}

// reachesFailStop reports whether fn is, or transitively calls, a
// configured fail-stop function.
func (a *effectAnalysis) reachesFailStop(fn *types.Func) bool {
	isStop := func(g *types.Func) bool {
		for _, name := range a.eoc.FailStops {
			if g.Name() == name {
				return true
			}
		}
		return false
	}
	if isStop(fn) {
		return true
	}
	ok, _ := a.prog.CallGraph().Reaches(fn, isStop)
	return ok
}

// witnessSummaries computes, for one obligation, which same-package
// functions contain a witness call (directly or through callees) — the
// may-approximation that lets a helper discharge its caller.
func (a *effectAnalysis) witnessSummaries(req *PrecededBy) map[*types.Func]bool {
	if a.witSums == nil {
		a.witSums = make(map[*PrecededBy]map[*types.Func]bool)
	}
	if wit, ok := a.witSums[req]; ok {
		return wit
	}
	wit := make(map[*types.Func]bool)
	for fn, node := range a.prog.CallGraph().Nodes {
		if node.Pkg != a.pkg {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if a.ifaceCall(e, req.WitnessIface, req.WitnessMethods) != "" {
					wit[fn] = true
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn := range a.sums {
			if wit[fn] {
				continue
			}
			for _, callee := range a.sums[fn].callees {
				if wit[callee] {
					wit[fn] = true
					changed = true
					break
				}
			}
		}
	}
	a.witSums[req] = wit
	return wit
}

// checkPreceded runs one obligation's must-analysis over one function:
// the dataflow fact is "the witness was observed on EVERY path reaching
// here" (merges intersect, back edges cut exactly as in checkOrder), and
// a gated call reached with the fact unestablished is a violation.
func (a *effectAnalysis) checkPreceded(fd *ast.FuncDecl, req *PrecededBy, report func(token.Pos, string)) {
	wit := a.witnessSummaries(req)
	g := BuildCFG(fd.Body)
	in := make([]bool, len(g.Blocks))
	reached := make([]bool, len(g.Blocks))
	reached[g.Entry.Index] = true
	for _, blk := range g.ReversePostOrder() {
		if !reached[blk.Index] {
			continue
		}
		st := in[blk.Index]
		for _, node := range blk.Nodes {
			var skip *ast.CallExpr
			switch d := node.(type) {
			case *ast.DeferStmt:
				skip = d.Call // runs at exit, not at its syntactic position
			case *ast.GoStmt:
				skip = d.Call // runs concurrently
			}
			walkNode(node, func(m ast.Node) {
				e, ok := m.(*ast.CallExpr)
				if !ok || e == skip {
					return
				}
				if a.ifaceCall(e, req.WitnessIface, req.WitnessMethods) != "" {
					st = true
					return
				}
				if name := a.ifaceCall(e, req.GateIface, req.GateMethods); name != "" {
					if !st {
						report(e.Pos(), name+" without a preceding "+req.WitnessIface+" observation on this path; "+req.Why)
					}
					return
				}
				if callee := a.samePkgCallee(e); callee != nil && wit[callee] {
					st = true
				}
			})
		}
		for _, e := range blk.Succs {
			if e.Back {
				continue
			}
			if !reached[e.To.Index] {
				in[e.To.Index] = st
				reached[e.To.Index] = true
			} else {
				in[e.To.Index] = in[e.To.Index] && st
			}
		}
	}
}

// pathTo returns the node path from root down to target (inclusive), or
// nil if target is not under root.
func pathTo(root, target ast.Node) []ast.Node {
	var stack []ast.Node
	var found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if found != nil {
			return false
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
	return found
}
