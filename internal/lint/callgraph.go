package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// callgraph.go builds the module-wide static call graph the
// interprocedural passes (transitive-purity, effect-order, lockset) share.
// Like the rest of the analyzer it leans on go/types only: a call is an
// edge when the callee resolves statically — a package-level function or a
// method on a concrete receiver. Calls through interfaces and func values
// have no static callee; they are recorded as dynamic call sites so passes
// can decide their own policy (the pure-core tier refuses them outright,
// the model tier ignores them).

// CallSite is one call expression inside a declared function.
type CallSite struct {
	Pos  token.Pos
	Call *ast.CallExpr
	// Callee is the statically resolved target (module-internal or
	// standard library), nil for dynamic calls.
	Callee *types.Func
	// Dynamic marks calls through func values and interface methods.
	Dynamic bool
	// DynamicName describes a dynamic call site for reporting and
	// allowlisting: "Type.Field" for a call through a func-typed field,
	// "Iface.Method" for an interface method, or the variable name.
	DynamicName string
	// InGo marks calls that are the operand of a go statement: the callee
	// runs concurrently, so sequencing analyses must not treat it as an
	// in-line event.
	InGo bool
}

// FuncNode is one declared function or method with its call sites (calls
// inside nested function literals are attributed to the declaring
// function — the literal's code ships with it).
type FuncNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallSite
}

// CallGraph indexes every function declared in the module.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
}

// CallGraph builds (once) and returns the module call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.cg != nil {
		return p.cg
	}
	cg := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				collectCalls(pkg, fd.Body, false, &node.Calls)
				cg.Nodes[fn] = node
			}
		}
	}
	p.cg = cg
	return cg
}

// collectCalls gathers the call sites under n (descending into function
// literals; inGo marks operands of go statements).
func collectCalls(pkg *Package, n ast.Node, inGo bool, out *[]CallSite) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.GoStmt:
			// The go operand's function and args are evaluated here, but
			// the call itself runs on another goroutine.
			*out = append(*out, resolveCall(pkg, e.Call, true))
			for _, arg := range e.Call.Args {
				collectCalls(pkg, arg, inGo, out)
			}
			collectCalls(pkg, e.Call.Fun, inGo, out)
			return false
		case *ast.CallExpr:
			cs := resolveCall(pkg, e, inGo)
			if cs.Callee != nil || cs.Dynamic {
				*out = append(*out, cs)
			}
			return true
		}
		return true
	})
}

// resolveCall classifies one call expression.
func resolveCall(pkg *Package, call *ast.CallExpr, inGo bool) CallSite {
	cs := CallSite{Pos: call.Pos(), Call: call, InGo: inGo}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			cs.Callee = obj
		case *types.Builtin, *types.TypeName, nil:
			// builtin or conversion: not a call edge
		case *types.Var:
			cs.Dynamic = true
			cs.DynamicName = obj.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, _ := sel.Obj().(*types.Func)
				cs.Callee = fn
				if recvIsInterface(sel.Recv()) {
					cs.Dynamic = true
					cs.DynamicName = typeShortName(sel.Recv()) + "." + sel.Obj().Name()
				}
			case types.FieldVal:
				// Call through a func-typed field (the jitter-hook shape).
				cs.Dynamic = true
				cs.DynamicName = typeShortName(sel.Recv()) + "." + sel.Obj().Name()
			}
		} else if obj, ok := pkg.Info.Uses[fun.Sel]; ok {
			// Package-qualified call (pkg.Fn) or conversion.
			if fn, ok := obj.(*types.Func); ok {
				cs.Callee = fn
			}
		}
	default:
		// Call of a func literal or arbitrary expression: dynamic, but a
		// literal's body is walked by the caller anyway.
		if _, isLit := call.Fun.(*ast.FuncLit); !isLit {
			cs.Dynamic = true
			cs.DynamicName = "func value"
		}
	}
	return cs
}

func recvIsInterface(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.IsInterface(t)
}

// typeShortName renders a receiver type as its bare (package-less) name.
func typeShortName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	s := t.String()
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// FuncDisplayName renders a function for diagnostics: "pkg.Fn" or
// "(pkg.T).Method".
func FuncDisplayName(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + pkgName + "." + typeShortName(sig.Recv().Type()) + ")." + fn.Name()
	}
	if pkgName == "" {
		return fn.Name()
	}
	return pkgName + "." + fn.Name()
}

// Reaches reports whether from can reach (transitively, through static
// module-internal calls) any function for which target returns true, and
// returns one witness chain of display names when it does.
func (cg *CallGraph) Reaches(from *types.Func, target func(*types.Func) bool) (bool, []string) {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func, depth int) []string
	walk = func(fn *types.Func, depth int) []string {
		if seen[fn] || depth > 64 {
			return nil
		}
		seen[fn] = true
		if target(fn) {
			return []string{FuncDisplayName(fn)}
		}
		node, ok := cg.Nodes[fn]
		if !ok {
			return nil
		}
		for _, cs := range node.Calls {
			if cs.Callee == nil || cs.Dynamic {
				continue
			}
			if chain := walk(cs.Callee, depth+1); chain != nil {
				return append([]string{FuncDisplayName(fn)}, chain...)
			}
		}
		return nil
	}
	chain := walk(from, 0)
	return chain != nil, chain
}
