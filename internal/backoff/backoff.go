// Package backoff is the repository's single definition of capped,
// jittered exponential backoff. The kvstore client's leader probing and
// cluster.WaitCommit's commit polling both use it, so the policy (double
// with full jitter on the upper half, cap, clip to the caller's deadline)
// lives in exactly one place.
//
// Every Backoff owns its own rand.Rand: two instances never share a jitter
// stream. That matters under contention — after a leader step-down,
// clients drawing jitter from one shared source march through the same
// sequence and retry in near-lockstep, re-creating the thundering herd the
// jitter exists to break up. Seed each concurrent client differently
// (NextSeed does this) and their retry times disperse.
package backoff

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// seedCounter makes NextSeed return a distinct value per call.
var seedCounter atomic.Int64

// NextSeed returns a process-unique seed: a counter mixed with the clock,
// so concurrent constructions — and repeated runs — get distinct streams.
func NextSeed() int64 {
	return time.Now().UnixNano() ^ (seedCounter.Add(1) << 32)
}

// Backoff is one capped jittered exponential backoff sequence. Not safe
// for concurrent use; give each goroutine its own instance.
type Backoff struct {
	initial time.Duration
	max     time.Duration
	next    time.Duration
	rng     *rand.Rand
}

// New creates a backoff that starts at initial, doubles per step, and
// caps at max, drawing jitter from a private stream seeded with seed.
func New(initial, max time.Duration, seed int64) *Backoff {
	return &Backoff{
		initial: initial,
		max:     max,
		next:    initial,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Reset rewinds the sequence to the initial delay (e.g. after progress:
// the next stall is a fresh incident, not a continuation).
func (b *Backoff) Reset() { b.next = b.initial }

// Next returns the current jittered delay — uniform in [next/2, next] —
// and advances the sequence (doubling up to the cap). The delay is clipped
// so it never overshoots deadline; once deadline has passed it returns 0.
func (b *Backoff) Next(deadline time.Time) time.Duration {
	d := b.next/2 + time.Duration(b.rng.Int63n(int64(b.next/2)+1))
	b.next *= 2
	if b.next > b.max {
		b.next = b.max
	}
	if remain := time.Until(deadline); d > remain {
		d = remain
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Sleep blocks for Next(deadline).
func (b *Backoff) Sleep(deadline time.Time) {
	if d := b.Next(deadline); d > 0 {
		time.Sleep(d)
	}
}
