package backoff

import (
	"testing"
	"time"
)

// drawSeq collects the first n delays of a fresh sequence against a far
// deadline (no clipping).
func drawSeq(b *Backoff, n int) []time.Duration {
	deadline := time.Now().Add(time.Hour)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = b.Next(deadline)
	}
	return out
}

// TestDispersion pins the reason each client gets its own seeded stream:
// differently seeded backoffs must NOT march through identical delays.
// (With a shared source every client would observe the same sequence and
// retry in lockstep after a leader step-down.)
func TestDispersion(t *testing.T) {
	const clients = 16
	const draws = 8
	seqs := make([][]time.Duration, clients)
	for i := range seqs {
		seqs[i] = drawSeq(New(time.Millisecond, 40*time.Millisecond, NextSeed()), draws)
	}
	distinct := 0
	for i := 1; i < clients; i++ {
		same := true
		for k := 0; k < draws; k++ {
			if seqs[i][k] != seqs[0][k] {
				same = false
				break
			}
		}
		if !same {
			distinct++
		}
	}
	// All 15 comparisons should differ; tolerate one coincidental match
	// (8 draws over a ≥0.5ms jitter window colliding even once is already
	// astronomically unlikely).
	if distinct < clients-2 {
		t.Fatalf("only %d/%d clients diverged from client 0: jitter streams are not independent", distinct, clients-1)
	}
}

// TestSameSeedReproduces: the stream is a pure function of the seed, so a
// replayed run backs off identically.
func TestSameSeedReproduces(t *testing.T) {
	a := drawSeq(New(time.Millisecond, 40*time.Millisecond, 42), 10)
	b := drawSeq(New(time.Millisecond, 40*time.Millisecond, 42), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v with the same seed", i, a[i], b[i])
		}
	}
}

// TestBoundsAndCap: every delay stays within [next/2, next] for the
// current tier and the tier never exceeds the cap.
func TestBoundsAndCap(t *testing.T) {
	b := New(time.Millisecond, 8*time.Millisecond, 7)
	deadline := time.Now().Add(time.Hour)
	tier := time.Millisecond
	for i := 0; i < 12; i++ {
		d := b.Next(deadline)
		if d < tier/2 || d > tier {
			t.Fatalf("draw %d: delay %v outside [%v, %v]", i, d, tier/2, tier)
		}
		tier *= 2
		if tier > 8*time.Millisecond {
			tier = 8 * time.Millisecond
		}
	}
	b.Reset()
	if d := b.Next(deadline); d > time.Millisecond {
		t.Fatalf("after Reset, delay %v exceeds the initial tier", d)
	}
}

// TestDeadlineClip: delays never overshoot the caller's deadline, and a
// passed deadline yields zero.
func TestDeadlineClip(t *testing.T) {
	b := New(50*time.Millisecond, 400*time.Millisecond, 3)
	if d := b.Next(time.Now().Add(5 * time.Millisecond)); d > 5*time.Millisecond {
		t.Fatalf("delay %v overshoots a 5ms deadline", d)
	}
	if d := b.Next(time.Now().Add(-time.Second)); d != 0 {
		t.Fatalf("delay %v after the deadline passed (want 0)", d)
	}
}
