package invariant

import (
	"strings"
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/types"
)

func freshState(rules core.Rules) *core.State {
	return core.NewState(config.RaftSingleNode, types.Range(1, 3), rules)
}

// drive executes a short healthy history: election, two methods, partial
// commit, reconfiguration, commit.
func drive(t *testing.T, s *core.State) {
	t.Helper()
	steps := []struct {
		desc string
		do   func() error
	}{
		{"pull", func() error {
			_, err := s.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1})
			return err
		}},
		{"invoke1", func() error { _, err := s.Invoke(1, 1); return err }},
		{"invoke2", func() error { _, err := s.Invoke(1, 2); return err }},
		{"push", func() error {
			ca := s.Tree.ActiveCache(1)
			_, err := s.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2), CM: ca.ID})
			return err
		}},
		{"reconfig", func() error {
			_, err := s.Reconfig(1, config.NewMajorityConfig(types.Range(1, 4)))
			return err
		}},
		{"push2", func() error {
			ca := s.Tree.ActiveCache(1)
			// Active cache is the RCache; commit it under the new config.
			_, err := s.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2, 3), CM: ca.ID})
			return err
		}},
	}
	for _, st := range steps {
		if err := st.do(); err != nil {
			t.Fatalf("%s: %v", st.desc, err)
		}
	}
}

func TestHealthyHistoryHasNoViolations(t *testing.T) {
	s := freshState(core.DefaultRules())
	drive(t, s)
	if vs := CheckAll(s); len(vs) != 0 {
		t.Errorf("violations on a healthy history: %v\n%s", vs, s.Tree.Render())
	}
}

func TestCheckerNamesStable(t *testing.T) {
	want := []string{"WellFormed", "DescendantOrder", "LeaderTimeUniqueness",
		"ElectionCommitOrder", "Safety", "CCacheInRCacheFork", "GuardsRespected",
		"CommittedConfigChain"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("%d checkers, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Name != want[i] {
			t.Errorf("checker %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

// buildDivergentCommits constructs (by direct tree surgery, representing an
// unreachable-but-checkable state) two CCaches on divergent branches.
func buildDivergentCommits() *core.State {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	m1 := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindM, Caller: 1, Time: 1, Vrsn: 1, Method: 1, Conf: cf})
	m2 := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindM, Caller: 2, Time: 2, Vrsn: 1, Method: 2, Conf: cf})
	s.Tree.AddLeaf(m1.ID, core.Cache{Kind: core.KindC, Caller: 1, Time: 1, Vrsn: 1, Supp: types.NewNodeSet(1, 2), Conf: cf})
	s.Tree.AddLeaf(m2.ID, core.Cache{Kind: core.KindC, Caller: 2, Time: 2, Vrsn: 1, Supp: types.NewNodeSet(2, 3), Conf: cf})
	return s
}

func TestCheckSafetyDetectsDivergence(t *testing.T) {
	s := buildDivergentCommits()
	v := CheckSafety(s)
	if v == nil {
		t.Fatal("divergent CCaches not detected")
	}
	if !strings.Contains(v.Detail, "divergent") {
		t.Errorf("unhelpful detail: %s", v.Detail)
	}
	// The same pair is at rdist 0, so the theorem-level variant fires too.
	if SafetyAtRDist(s, 0) == nil {
		t.Error("rdist-0 safety variant missed the violation")
	}
}

func TestCheckDescendantOrderDetectsInversion(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	big := s.Tree.AddLeaf(s.Tree.Root().ID, core.Cache{Kind: core.KindM, Caller: 1, Time: 5, Vrsn: 1, Conf: cf})
	s.Tree.AddLeaf(big.ID, core.Cache{Kind: core.KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	if CheckDescendantOrder(s) == nil {
		t.Error("stamp inversion not detected")
	}
}

func TestCheckLeaderTimeUniquenessDetectsDuplicate(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindE, Caller: 1, Time: 3, Vrsn: 0, Supp: types.NewNodeSet(1, 2), Conf: cf})
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindE, Caller: 2, Time: 3, Vrsn: 0, Supp: types.NewNodeSet(2, 3), Conf: cf})
	if CheckLeaderTimeUniqueness(s) == nil {
		t.Error("duplicate election timestamp not detected")
	}
	if LeaderTimeUniquenessAtRDist(s, 0) == nil {
		t.Error("rdist-0 variant missed the duplicate")
	}
}

func TestLeaderTimeUniquenessRDistFilter(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	// Two duplicate-time ECaches separated by two RCaches (rdist 2).
	r1 := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	s.Tree.AddLeaf(r1.ID, core.Cache{Kind: core.KindE, Caller: 1, Time: 7, Vrsn: 0, Supp: types.NewNodeSet(1), Conf: cf})
	r2 := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})
	s.Tree.AddLeaf(r2.ID, core.Cache{Kind: core.KindE, Caller: 2, Time: 7, Vrsn: 0, Supp: types.NewNodeSet(2), Conf: cf})
	// At rdist ≤ 1 the pair is filtered out; unrestricted it is caught.
	if LeaderTimeUniquenessAtRDist(s, 1) != nil {
		t.Error("rdist filter failed to exclude a distant pair")
	}
	if CheckLeaderTimeUniqueness(s) == nil {
		t.Error("unrestricted check missed the duplicate")
	}
}

func TestCheckElectionCommitOrderDetectsStaleElection(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	m := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	s.Tree.AddLeaf(m.ID, core.Cache{Kind: core.KindC, Caller: 1, Time: 1, Vrsn: 1, Supp: types.NewNodeSet(1, 2), Conf: cf})
	// A later election that forked before the commit: must be flagged.
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindE, Caller: 3, Time: 9, Vrsn: 0, Supp: types.NewNodeSet(3), Conf: cf})
	if CheckElectionCommitOrder(s) == nil {
		t.Error("stale election above a commit not detected")
	}
}

func TestCheckCCacheInRCacheFork(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	// Two RCaches forking directly off the root with no CCache between:
	// Lemma 4.4 violated.
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})
	if CheckCCacheInRCacheFork(s) == nil {
		t.Error("forked RCaches without intervening CCache not detected")
	}
}

func TestCheckCCacheInRCacheForkSatisfied(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	m := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	cc := s.Tree.AddLeaf(m.ID, core.Cache{Kind: core.KindC, Caller: 1, Time: 1, Vrsn: 1, Supp: types.NewNodeSet(1, 2), Conf: cf})
	s.Tree.AddLeaf(cc.ID, core.Cache{Kind: core.KindR, Caller: 1, Time: 1, Vrsn: 2, Conf: cf})
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})
	// The CCache lies between the fork point (root) and the first RCache.
	if v := CheckCCacheInRCacheFork(s); v != nil {
		t.Errorf("false positive: %v", v)
	}
}

func TestCheckGuardsRespected(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	// An RCache with no same-time committed ancestor violates R3.
	s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	v := CheckGuardsRespected(s)
	if v == nil || !strings.Contains(v.Detail, "R3") {
		t.Errorf("R3 breach not detected: %v", v)
	}
}

func TestCheckGuardsRespectedR2(t *testing.T) {
	s := freshState(core.DefaultRules())
	cf := config.NewMajorityConfig(types.Range(1, 3))
	root := s.Tree.Root().ID
	r1 := s.Tree.AddLeaf(root, core.Cache{Kind: core.KindR, Caller: 1, Time: 0, Vrsn: 1, Conf: cf})
	s.Tree.AddLeaf(r1.ID, core.Cache{Kind: core.KindR, Caller: 1, Time: 0, Vrsn: 2, Conf: cf})
	v := CheckGuardsRespected(s)
	if v == nil || !strings.Contains(v.Detail, "R2") {
		t.Errorf("R2 breach not detected: %v", v)
	}
}

func TestCheckWellFormedOnHealthyState(t *testing.T) {
	s := freshState(core.DefaultRules())
	drive(t, s)
	if v := CheckWellFormed(s); v != nil {
		t.Errorf("false positive: %v", v)
	}
}

func TestCheckAllSkipsInapplicable(t *testing.T) {
	s := buildDivergentCommits()
	s.Rules = core.WithoutR3()
	// CheckAll must skip Safety (not expected without R3)...
	for _, v := range CheckAll(s) {
		if v.Invariant == "Safety" {
			t.Error("CheckAll ran Safety under WithoutR3 rules")
		}
	}
	// ...but CheckAllForced must find it.
	found := false
	for _, v := range CheckAllForced(s) {
		if v.Invariant == "Safety" {
			found = true
		}
	}
	if !found {
		t.Error("CheckAllForced missed the Safety violation")
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Invariant: "Safety", Detail: "boom"}
	if v.Error() != "Safety: boom" {
		t.Errorf("Error() = %q", v.Error())
	}
}

func TestCommittedConfigChain(t *testing.T) {
	s := freshState(core.DefaultRules())
	drive(t, s)
	if v := CheckCommittedConfigChain(s); v != nil {
		t.Errorf("false positive on a guarded history: %v", v)
	}
	// Surgically commit a two-node jump: the chain check must flag it.
	bad := config.NewMajorityConfig(types.NewNodeSet(1, 2, 5, 6))
	branch := s.CommittedBranch()
	top := branch[len(branch)-1]
	r := s.Tree.AddLeaf(top.ID, core.Cache{Kind: core.KindR, Caller: 1, Time: top.Time, Vrsn: top.Vrsn + 1, Conf: bad})
	s.Tree.InsertBtw(r.ID, core.Cache{Kind: core.KindC, Caller: 1, Time: r.Time, Vrsn: r.Vrsn, Supp: types.NewNodeSet(1, 2, 5), Conf: bad})
	if CheckCommittedConfigChain(s) == nil {
		t.Error("two-step committed jump not detected")
	}
}
