// Package invariant turns the Adore paper's safety theorems (§4, Appendix
// B) into executable checkers over core.State. Where the paper proves each
// property universally in Coq, this package checks it on concrete reachable
// states; package explore quantifies the check over bounded state spaces.
//
// Each checker corresponds to a named lemma or theorem:
//
//	WellFormed            — tree well-formedness (the paper's 2.3k-line layer)
//	DescendantOrder       — Lemma B.1
//	LeaderTimeUniqueness  — Lemmas B.2 (rdist 0) and B.5 (rdist 1)
//	ElectionCommitOrder   — Theorems B.3 (rdist 0) and B.6 (rdist 1)
//	Safety                — Def. 4.1 / Theorems B.4, B.7, B.9 (Thm 4.5)
//	CCacheInRCacheFork    — Lemma B.8 (Lemma 4.4)
//	GuardsRespected       — R2/R3 hold structurally at every RCache
//	CommittedConfigChain  — committed configurations form an R1⁺ chain
package invariant

import (
	"fmt"

	"adore/internal/core"
	"adore/internal/types"
)

// Violation describes one failed invariant on one state.
type Violation struct {
	// Invariant names the failed checker.
	Invariant string
	// Detail explains the failure in terms of concrete caches.
	Detail string
}

// Error renders the violation.
func (v Violation) Error() string { return v.Invariant + ": " + v.Detail }

// Checker is a named invariant over states.
type Checker struct {
	// Name identifies the invariant in reports.
	Name string
	// AppliesTo reports whether the invariant is expected to hold under
	// the given rules (e.g. Safety is not expected without R3).
	AppliesTo func(core.Rules) bool
	// Check returns a violation, or nil.
	Check func(*core.State) *Violation
}

func always(core.Rules) bool { return true }

// fullGuards reports whether the rules are expected to be safe: either
// reconfiguration is off (static-configuration arguments apply), or the
// hot algorithm runs with all three guards, or the deferred (Lamport-style)
// variant runs with R1⁺/R2 — inert uncommitted configurations make R3
// unnecessary there (§8).
func fullGuards(r core.Rules) bool {
	if !r.AllowReconfig {
		return true
	}
	if r.DeferredConfig {
		return r.R1 && r.R2
	}
	return r.R1 && r.R2 && r.R3
}

// All returns every checker in a stable order.
func All() []Checker {
	return []Checker{
		{Name: "WellFormed", AppliesTo: always, Check: CheckWellFormed},
		{Name: "DescendantOrder", AppliesTo: always, Check: CheckDescendantOrder},
		{Name: "LeaderTimeUniqueness", AppliesTo: fullGuards, Check: CheckLeaderTimeUniqueness},
		{Name: "ElectionCommitOrder", AppliesTo: fullGuards, Check: CheckElectionCommitOrder},
		{Name: "Safety", AppliesTo: fullGuards, Check: CheckSafety},
		{Name: "CCacheInRCacheFork", AppliesTo: r3Guards, Check: CheckCCacheInRCacheFork},
		{Name: "GuardsRespected", AppliesTo: guardsApply, Check: CheckGuardsRespected},
		{Name: "CommittedConfigChain", AppliesTo: r1Guard, Check: CheckCommittedConfigChain},
	}
}

// r1Guard gates the configuration-chain invariant on R1⁺ being enforced.
func r1Guard(r core.Rules) bool { return !r.AllowReconfig || r.R1 }

// r3Guards gates the invariants that are consequences of R3 specifically
// (Lemma 4.4 fails — harmlessly — in the deferred variant, where
// uncommitted RCaches are inert and may fork freely).
func r3Guards(r core.Rules) bool {
	return !r.AllowReconfig || (r.R1 && r.R2 && r.R3 && !r.DeferredConfig)
}

func guardsApply(r core.Rules) bool {
	return r.AllowReconfig && r.R2 && r.R3 && !r.DeferredConfig
}

// CheckAll runs every applicable checker and returns the violations found.
func CheckAll(s *core.State) []Violation {
	var out []Violation
	for _, c := range All() {
		if !c.AppliesTo(s.Rules) {
			continue
		}
		if v := c.Check(s); v != nil {
			out = append(out, *v)
		}
	}
	return out
}

// CheckAllForced runs every checker regardless of whether the state's rules
// make it expected to hold, except GuardsRespected (which is structurally
// meaningless when a guard is disabled). Violation-hunting scenarios and
// searches use this: with R3 off, a Safety violation is the sought result,
// not an error in the checker.
func CheckAllForced(s *core.State) []Violation {
	var out []Violation
	for _, c := range All() {
		if c.Name == "GuardsRespected" && !guardsApply(s.Rules) {
			continue
		}
		if v := c.Check(s); v != nil {
			out = append(out, *v)
		}
	}
	return out
}

// CheckWellFormed validates structural sanity: a unique root CCache at time
// zero, consistent parent/child indexes, acyclicity, and supporter sets
// drawn from each cache's configuration.
func CheckWellFormed(s *core.State) *Violation {
	t := s.Tree
	root := t.Root()
	if root == nil || root.Kind != core.KindC || root.Time != 0 || root.Vrsn != 0 {
		return &Violation{"WellFormed", fmt.Sprintf("bad root: %v", root)}
	}
	for _, c := range t.All() {
		if c.ID == root.ID {
			continue
		}
		parent := t.Get(c.Parent)
		if parent == nil {
			return &Violation{"WellFormed", fmt.Sprintf("%v has missing parent %d", c, c.Parent)}
		}
		found := false
		for _, kid := range t.Children(c.Parent) {
			if kid == c.ID {
				found = true
				break
			}
		}
		if !found {
			return &Violation{"WellFormed", fmt.Sprintf("%v missing from parent's child index", c)}
		}
		// Acyclicity: the walk to the root must terminate within Len steps.
		steps := 0
		for cur := c; cur != nil && cur.ID != root.ID; cur = t.Get(cur.Parent) {
			steps++
			if steps > t.Len() {
				return &Violation{"WellFormed", fmt.Sprintf("cycle reached from %v", c)}
			}
		}
		// validSupp is only enforced for quorum-bearing caches: an MCache
		// or RCache may legitimately be called by a leader its own new
		// configuration excludes (pending self-removal).
		if c.Kind == core.KindE || c.Kind == core.KindC {
			if !c.Supporters().SubsetOf(c.Conf.Members()) {
				return &Violation{"WellFormed", fmt.Sprintf("%v has supporters outside its configuration", c)}
			}
		}
	}
	for _, c := range t.All() {
		for _, kid := range t.Children(c.ID) {
			if k := t.Get(kid); k == nil || k.Parent != c.ID {
				return &Violation{"WellFormed", fmt.Sprintf("child index stale for %d → %d", c.ID, kid)}
			}
		}
	}
	return nil
}

// CheckDescendantOrder is Lemma B.1: every cache is strictly greater than
// its parent under the > order.
func CheckDescendantOrder(s *core.State) *Violation {
	t := s.Tree
	for _, c := range t.All() {
		if c.Parent == types.NoCID {
			continue
		}
		parent := t.Get(c.Parent)
		if !c.Greater(parent) {
			return &Violation{"DescendantOrder", fmt.Sprintf("child %v not greater than parent %v", c, parent)}
		}
	}
	return nil
}

// CheckLeaderTimeUniqueness is Lemmas B.2/B.5 generalized: under the full
// guards any two distinct ECaches have distinct timestamps. The rdist ≤ 1
// variants are available separately for the theorem-level tests.
func CheckLeaderTimeUniqueness(s *core.State) *Violation {
	return leaderTimeUnique(s, -1)
}

// LeaderTimeUniquenessAtRDist checks the property only for ECache pairs
// with rdist ≤ maxRDist (Lemma B.2 is maxRDist 0, Lemma B.5 is 1). A
// negative bound checks all pairs.
func LeaderTimeUniquenessAtRDist(s *core.State, maxRDist int) *Violation {
	return leaderTimeUnique(s, maxRDist)
}

func leaderTimeUnique(s *core.State, maxRDist int) *Violation {
	var ecaches []*core.Cache
	for _, c := range s.Tree.All() {
		if c.Kind == core.KindE {
			ecaches = append(ecaches, c)
		}
	}
	for i := 0; i < len(ecaches); i++ {
		for j := i + 1; j < len(ecaches); j++ {
			a, b := ecaches[i], ecaches[j]
			if maxRDist >= 0 && s.Tree.RDist(a.ID, b.ID) > maxRDist {
				continue
			}
			if a.Time == b.Time {
				return &Violation{"LeaderTimeUniqueness",
					fmt.Sprintf("ECaches %v and %v share timestamp %d", a, b, a.Time)}
			}
		}
	}
	return nil
}

// CheckElectionCommitOrder is Theorems B.3/B.6 generalized: for any CCache
// C_C and ECache C_E with C_E > C_C (at rdist ≤ 1 for the theorem-level
// variant), C_E must be a descendant of C_C — i.e. later elections know
// about earlier commits.
func CheckElectionCommitOrder(s *core.State) *Violation {
	return electionCommitOrder(s, -1)
}

// ElectionCommitOrderAtRDist restricts the check to pairs with rdist ≤
// maxRDist (Theorem B.3 is 0, Theorem B.6 is 1).
func ElectionCommitOrderAtRDist(s *core.State, maxRDist int) *Violation {
	return electionCommitOrder(s, maxRDist)
}

func electionCommitOrder(s *core.State, maxRDist int) *Violation {
	t := s.Tree
	for _, cc := range t.CCaches() {
		for _, c := range t.All() {
			if c.Kind != core.KindE || !c.Greater(cc) {
				continue
			}
			if maxRDist >= 0 && t.RDist(c.ID, cc.ID) > maxRDist {
				continue
			}
			if !t.IsAncestor(cc.ID, c.ID) {
				return &Violation{"ElectionCommitOrder",
					fmt.Sprintf("ECache %v > CCache %v but is not its descendant", c, cc)}
			}
		}
	}
	return nil
}

// CheckSafety is replicated state safety (Def. 4.1, Theorem 4.5 / B.9): all
// CCaches lie on a single branch, so clients observe one common committed
// prefix.
func CheckSafety(s *core.State) *Violation {
	return safetyAtRDist(s, -1)
}

// SafetyAtRDist restricts the check to CCache pairs with rdist ≤ maxRDist
// (Theorem B.4 is 0, Theorem B.7 is 1, Theorem 4.3 is ≤ 1).
func SafetyAtRDist(s *core.State, maxRDist int) *Violation {
	return safetyAtRDist(s, maxRDist)
}

func safetyAtRDist(s *core.State, maxRDist int) *Violation {
	ccs := s.Tree.CCaches()
	for i := 0; i < len(ccs); i++ {
		for j := i + 1; j < len(ccs); j++ {
			a, b := ccs[i], ccs[j]
			if maxRDist >= 0 && s.Tree.RDist(a.ID, b.ID) > maxRDist {
				continue
			}
			if !s.Tree.OnSameBranch(a.ID, b.ID) {
				return &Violation{"Safety",
					fmt.Sprintf("CCaches %v and %v are on divergent branches: committed state lost", a, b)}
			}
		}
	}
	return nil
}

// CheckCCacheInRCacheFork is Lemma B.8 (Lemma 4.4): if two RCaches with
// rdist 0 sit on divergent branches below a common ancestor, some CCache
// lies strictly between the ancestor and one of them.
func CheckCCacheInRCacheFork(s *core.State) *Violation {
	t := s.Tree
	rcs := t.RCaches()
	for i := 0; i < len(rcs); i++ {
		for j := i + 1; j < len(rcs); j++ {
			r1, r2 := rcs[i], rcs[j]
			if t.OnSameBranch(r1.ID, r2.ID) || t.RDist(r1.ID, r2.ID) != 0 {
				continue
			}
			nca := t.NCA(r1.ID, r2.ID)
			if !hasCCacheBetween(t, nca, r1.ID) && !hasCCacheBetween(t, nca, r2.ID) {
				return &Violation{"CCacheInRCacheFork",
					fmt.Sprintf("forked RCaches %v and %v have no intervening CCache below their common ancestor", r1, r2)}
			}
		}
	}
	return nil
}

// hasCCacheBetween reports whether a CCache lies strictly between ancestor
// and descendant (excluding both endpoints).
func hasCCacheBetween(t *core.Tree, ancestor, descendant types.CID) bool {
	for _, c := range t.PathToRoot(descendant) {
		if c.ID == descendant {
			continue
		}
		if c.ID == ancestor {
			return false
		}
		if c.Kind == core.KindC {
			return true
		}
	}
	return false
}

// CheckGuardsRespected verifies that the R2/R3 preconditions held at every
// RCache's insertion point, reconstructed structurally from the tree: above
// each RCache there is no closer uncommitted RCache (R2) and there is a
// CCache with the same timestamp (R3).
func CheckGuardsRespected(s *core.State) *Violation {
	t := s.Tree
	for _, r := range t.RCaches() {
		sawC := false
		r3 := false
		for _, anc := range t.PathToRoot(r.ID) {
			if anc.ID == r.ID {
				continue
			}
			switch anc.Kind {
			case core.KindC:
				sawC = true
				if anc.Time == r.Time {
					r3 = true
				}
			case core.KindR:
				if !sawC {
					return &Violation{"GuardsRespected",
						fmt.Sprintf("RCache %v has uncommitted RCache ancestor %v (R2)", r, anc)}
				}
			case core.KindE, core.KindM:
				// Plain log entries never witness or violate R2/R3.
			}
		}
		if !r3 {
			return &Violation{"GuardsRespected",
				fmt.Sprintf("RCache %v has no committed ancestor at its timestamp (R3)", r)}
		}
	}
	return nil
}

// CheckCommittedConfigChain verifies that the configurations along the
// committed branch form an R1⁺ chain: conf₀, then each committed RCache's
// configuration, pairwise related by the scheme's R1⁺. This is the
// structural backbone of the quorum-overlap argument — committed
// configurations never jump further than one R1⁺ step at a time.
func CheckCommittedConfigChain(s *core.State) *Violation {
	branch := s.CommittedBranch()
	prev := s.Tree.Root().Conf
	for _, c := range branch {
		if c.Kind != core.KindR {
			continue
		}
		if !s.Scheme.R1Plus(prev, c.Conf) {
			return &Violation{"CommittedConfigChain",
				fmt.Sprintf("committed configurations %s → %s are not R1⁺-related (at %v)", prev, c.Conf, c)}
		}
		prev = c.Conf
	}
	return nil
}
