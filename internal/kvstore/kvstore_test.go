package kvstore

import (
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

const opTimeout = 10 * time.Second

func applyCmd(t *testing.T, s *Store, idx int, c Command) {
	t.Helper()
	s.Apply(raft.ApplyMsg{Index: idx, Kind: raft.EntryCommand, Command: c.Encode()})
}

func TestStoreBasicOps(t *testing.T) {
	s := NewStore()
	applyCmd(t, s, 1, Command{Op: OpPut, Key: "a", Value: "1", Client: 1, Seq: 1})
	if v, ok := s.LocalGet("a"); !ok || v != "1" {
		t.Errorf("get a = %q %v", v, ok)
	}
	applyCmd(t, s, 2, Command{Op: OpAppend, Key: "a", Value: "2", Client: 1, Seq: 2})
	if v, _ := s.LocalGet("a"); v != "12" {
		t.Errorf("append: %q", v)
	}
	applyCmd(t, s, 3, Command{Op: OpCAS, Key: "a", Old: "12", Value: "x", Client: 1, Seq: 3})
	if v, _ := s.LocalGet("a"); v != "x" {
		t.Errorf("cas: %q", v)
	}
	applyCmd(t, s, 4, Command{Op: OpCAS, Key: "a", Old: "wrong", Value: "y", Client: 1, Seq: 4})
	if v, _ := s.LocalGet("a"); v != "x" {
		t.Errorf("failed cas must not write: %q", v)
	}
	applyCmd(t, s, 5, Command{Op: OpDelete, Key: "a", Client: 1, Seq: 5})
	if _, ok := s.LocalGet("a"); ok {
		t.Error("delete did not remove the key")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestStoreDeduplicatesRetries(t *testing.T) {
	s := NewStore()
	cmd := Command{Op: OpAppend, Key: "k", Value: "x", Client: 9, Seq: 1}
	applyCmd(t, s, 1, cmd)
	applyCmd(t, s, 2, cmd) // retried proposal applied twice by raft
	if v, _ := s.LocalGet("k"); v != "x" {
		t.Errorf("duplicate applied: %q", v)
	}
}

func TestStoreWaiters(t *testing.T) {
	s := NewStore()
	ch := s.wait(1, 5, 1)
	applyCmd(t, s, 1, Command{Op: OpPut, Key: "a", Value: "v", Client: 5, Seq: 1})
	wr := <-ch
	if !wr.mine || wr.res.Value != "v" {
		t.Errorf("waiter result = %+v", wr)
	}
	// A waiter whose index was taken by someone else's command.
	ch2 := s.wait(2, 5, 2)
	applyCmd(t, s, 2, Command{Op: OpPut, Key: "b", Value: "w", Client: 77, Seq: 1})
	if wr := <-ch2; wr.mine {
		t.Error("foreign command reported as mine")
	}
	// A waiter registered after its index applied resolves immediately.
	ch3 := s.wait(1, 5, 1)
	if wr := <-ch3; !wr.mine {
		t.Error("late waiter did not resolve from the dedup table")
	}
}

func TestStoreIgnoresNonCommands(t *testing.T) {
	s := NewStore()
	ch := s.wait(1, 1, 1)
	s.Apply(raft.ApplyMsg{Index: 1, Kind: raft.EntryNoOp})
	if wr := <-ch; wr.mine {
		t.Error("no-op resolved as a command")
	}
	if s.Len() != 0 {
		t.Error("no-op mutated the store")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewStore()
	applyCmd(t, s, 1, Command{Op: OpPut, Key: "a", Value: "1", Client: 1, Seq: 1})
	snap := s.Snapshot()
	snap["a"] = "mutated"
	if v, _ := s.LocalGet("a"); v != "1" {
		t.Error("snapshot shares storage")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Command{Op: OpCAS, Key: "k", Value: "v", Old: "o", Client: 3, Seq: 7}
	out, err := DecodeCommand(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
	if _, err := DecodeCommand([]byte("not json")); err == nil {
		t.Error("garbage decoded successfully")
	}
}

func TestReplicatedEndToEnd(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 200 * time.Microsecond, Seed: 11})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("name", "adore", opTimeout); err != nil {
		t.Fatal(err)
	}
	v, ok, err := r.Get("name", opTimeout)
	if err != nil || !ok || v != "adore" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	swapped, err := r.CAS("name", "adore", "adore2", opTimeout)
	if err != nil || !swapped {
		t.Fatalf("cas: %v %v", swapped, err)
	}
	if v, err := r.Append("name", "!", opTimeout); err != nil || v != "adore2!" {
		t.Fatalf("append = %q %v", v, err)
	}
	found, err := r.Delete("name", opTimeout)
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := r.Get("name", opTimeout); ok {
		t.Error("key survived delete")
	}
}

func TestReplicatedAllReplicasConverge(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 13})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), opTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// A final linearizable read ensures everything committed; then wait
	// for followers to apply.
	if _, _, err := r.Get("k19", opTimeout); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(opTimeout)
	for time.Now().Before(deadline) {
		if r.Store(1).Len() == 20 && r.Store(2).Len() == 20 && r.Store(3).Len() == 20 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		st := r.Store(id)
		if st.Len() != 20 {
			t.Fatalf("%s has %d keys, want 20", id, st.Len())
		}
	}
	// All snapshots identical.
	ref := r.Store(1).Snapshot()
	for _, id := range []types.NodeID{2, 3} {
		snap := r.Store(id).Snapshot()
		for k, v := range ref {
			if snap[k] != v {
				t.Fatalf("%s diverges at %q: %q vs %q", id, k, snap[k], v)
			}
		}
	}
}

func TestReplicatedSurvivesLeaderLoss(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 17})
	defer r.Stop()
	lid, err := r.Cluster.WaitForLeader(opTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", "v1", opTimeout); err != nil {
		t.Fatal(err)
	}
	r.Cluster.Net.Isolate(lid)
	// Writes keep working through the new leader.
	if err := r.Put("k", "v2", opTimeout); err != nil {
		t.Fatal(err)
	}
	v, ok, err := r.Get("k", opTimeout)
	if err != nil || !ok || v != "v2" {
		t.Fatalf("after failover: %q %v %v", v, ok, err)
	}
	r.Cluster.Net.Heal()
}

func TestReplicatedUnderReconfiguration(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 19})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("pre", "1", opTimeout); err != nil {
		t.Fatal(err)
	}
	// Grow to 4 while serving writes.
	r.Cluster.StartNode(4, []types.NodeID{1, 2, 3, 4})
	if _, err := r.Cluster.Reconfigure(types.Range(1, 4), opTimeout); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("during", "2", opTimeout); err != nil {
		t.Fatal(err)
	}
	// Shrink back to 3.
	if _, err := r.Cluster.Reconfigure(types.Range(1, 3), opTimeout); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("post", "3", opTimeout); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"pre", "during", "post"} {
		if _, ok, err := r.Get(k, opTimeout); err != nil || !ok {
			t.Fatalf("key %q lost across reconfiguration (%v)", k, err)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	applyCmd(t, s, 1, Command{Op: OpPut, Key: "a", Value: "1", Client: 1, Seq: 1})
	applyCmd(t, s, 2, Command{Op: OpPut, Key: "b", Value: "2", Client: 1, Seq: 2})
	img, applied, err := s.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Errorf("snapshot applied index = %d, want 2", applied)
	}
	fresh := NewStore()
	if err := fresh.LoadSnapshot(img); err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.LocalGet("a"); !ok || v != "1" {
		t.Errorf("restored a = %q %v", v, ok)
	}
	if fresh.AppliedIndex() != 2 {
		t.Errorf("restored applied = %d", fresh.AppliedIndex())
	}
	// Dedup table survives: re-applying an old command is a no-op.
	applyCmd(t, fresh, 3, Command{Op: OpPut, Key: "a", Value: "STALE", Client: 1, Seq: 1})
	if v, _ := fresh.LocalGet("a"); v != "1" {
		t.Errorf("dedup lost across snapshot: %q", v)
	}
	if err := fresh.LoadSnapshot([]byte("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestFastGetObservesPrecedingWrites(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 37})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		val := fmt.Sprintf("v%d", i)
		if err := r.Put("k", val, opTimeout); err != nil {
			t.Fatal(err)
		}
		// A FastGet issued after the Put returned must see it (or newer).
		v, ok, err := r.FastGet("k", opTimeout)
		if err != nil || !ok {
			t.Fatalf("FastGet: %q %v %v", v, ok, err)
		}
		if v != val {
			t.Fatalf("FastGet observed %q after Put(%q) returned", v, val)
		}
	}
	// FastGet on a missing key.
	if _, ok, err := r.FastGet("missing", opTimeout); err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestFastGetSurvivesLeaderChange(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 41})
	defer r.Stop()
	lid, err := r.Cluster.WaitForLeader(opTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", "before", opTimeout); err != nil {
		t.Fatal(err)
	}
	r.Cluster.Net.Isolate(lid)
	defer r.Cluster.Net.Heal()
	v, ok, err := r.FastGet("k", opTimeout)
	if err != nil || !ok || v != "before" {
		t.Fatalf("FastGet after failover: %q %v %v", v, ok, err)
	}
}
