package kvstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/backoff"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// Replicated is a complete in-process replicated key-value service: a raft
// cluster with one Store per node and a linearizable client interface. It
// is the harness behind the kvstore example and the Fig. 16 benchmark.
type Replicated struct {
	Cluster *cluster.Cluster

	// Unbatched, when set before the first request, routes proposals
	// through the synchronous Propose path (one fsync and one broadcast
	// per command) instead of the group-commit ProposeAsync path. It
	// exists so benchmarks can measure batching against the naive
	// baseline; leave it false in real use.
	Unbatched bool

	// ReadServeCost, when set before the first request, charges every
	// FastGet the read-execution cost (state-machine lookup, response
	// serialization) on the replica that served it, serialized per
	// replica — one CPU's worth of read work per node. Like the
	// benchmark's delayStorage, only the wait is simulated; the
	// serialization it models (a replica executes its reads one at a
	// time) is the architecture under test. It exists so read-path
	// benchmarks can measure how follower-served reads distribute load
	// across the replica set; leave it zero in real use.
	ReadServeCost time.Duration

	mu      sync.Mutex
	stores  map[types.NodeID]*Store      // guarded by mu
	serveMu map[types.NodeID]*sync.Mutex // guarded by mu

	nextClient uint64 // accessed atomically
	retries    uint64 // accessed atomically
	def        *Client
}

// Retries reports how many request attempts across all clients found no
// leader or had their proposal rejected and had to back off and re-probe.
// A healthy cluster keeps this near zero; tests use it to bound how hard
// clients hammer a leaderless cluster.
func (r *Replicated) Retries() uint64 { return atomic.LoadUint64(&r.retries) }

// Leader-probe backoff. A fixed 1ms spin between probes is harmless for a
// brief leader change but burns a core per client during a real outage
// (election storm, quorum loss): clients wake a thousand times a second to
// learn nothing. Failed probes instead back off exponentially from
// backoffInitial to backoffMax with ±50% jitter, capped by the request
// deadline, via the shared internal/backoff helper. Progress — a proposal
// accepted, or a leader's explicit ErrLeaderStepdown redirect — resets the
// backoff to keep the fast path fast.
//
// Each probe carries its own independently seeded jitter stream: clients
// drawing from one shared random source would march through the same
// jitter sequence and re-probe in near-lockstep after a step-down, which
// is exactly the herd the jitter is meant to disperse.
const (
	backoffInitial = time.Millisecond
	backoffMax     = 40 * time.Millisecond
)

// probe pairs a per-client backoff stream with the service-wide retry
// counter.
type probe struct {
	r  *Replicated
	bo *backoff.Backoff
}

func (r *Replicated) newProbe() probe {
	return probe{r: r, bo: backoff.New(backoffInitial, backoffMax, backoff.NextSeed())}
}

func (p *probe) reset() { p.bo.Reset() }

// sleep counts one retry and waits the current jittered slice, clipped to
// the deadline.
func (p *probe) sleep(deadline time.Time) {
	atomic.AddUint64(&p.r.retries, 1)
	p.bo.Sleep(deadline)
}

// NewReplicated starts an n-node replicated store over a simulated network.
func NewReplicated(opts cluster.Options) *Replicated {
	r := &Replicated{
		stores:  make(map[types.NodeID]*Store),
		serveMu: make(map[types.NodeID]*sync.Mutex),
	}
	opts.OnApply = func(id types.NodeID, msg raft.ApplyMsg) {
		r.storeFor(id).Apply(msg)
	}
	opts.StateMachineFor = func(id types.NodeID) raft.StateMachine {
		return r.storeFor(id)
	}
	r.Cluster = cluster.New(opts)
	r.def = r.NewClient()
	return r
}

// Client is one logical client session with its own request identity.
// The store's dedup table assumes at most one outstanding request per
// client ID (Seq numbers commit in order), so every concurrently-operating
// caller must hold its own Client: two goroutines sharing an ID can commit
// out of sequence order, and the dedup table would swallow the
// later-committing request as a stale duplicate.
type Client struct {
	r   *Replicated
	id  uint64
	seq uint64 // accessed atomically
	pr  probe  // this session's private jitter stream
}

// NewClient mints a fresh client session with its own independently seeded
// backoff jitter stream.
func (r *Replicated) NewClient() *Client {
	return &Client{r: r, id: atomic.AddUint64(&r.nextClient, 1), pr: r.newProbe()}
}

func (r *Replicated) storeFor(id types.NodeID) *Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stores[id]
	if !ok {
		st = NewStore()
		r.stores[id] = st
	}
	return st
}

// Store returns the state machine of the given replica.
func (r *Replicated) Store(id types.NodeID) *Store { return r.storeFor(id) }

// Stop shuts the service down.
func (r *Replicated) Stop() { r.Cluster.Stop() }

// Do submits a command through the current leader and waits for it to
// apply, retrying across leader changes until the deadline. It runs on the
// service's default client session; callers issuing requests from several
// goroutines should mint a Client each (see NewClient) so the dedup table
// sees in-order sequence numbers.
func (r *Replicated) Do(op Op, key, value, old string, timeout time.Duration) (Result, error) {
	return r.def.Do(op, key, value, old, timeout)
}

// Do submits a command on this client session and waits for it to apply,
// retrying across leader changes until the deadline. Retries reuse the same
// (client, seq) pair, so a request that committed but lost its ack is
// answered from the dedup table instead of applying twice.
func (c *Client) Do(op Op, key, value, old string, timeout time.Duration) (Result, error) {
	r := c.r
	seq := atomic.AddUint64(&c.seq, 1)
	cmd := Command{Op: op, Key: key, Value: value, Old: old, Client: c.id, Seq: seq}
	payload := cmd.Encode()
	deadline := time.Now().Add(timeout)
	bo := &c.pr
	bo.reset()
	for time.Now().Before(deadline) {
		leader := r.Cluster.Leader()
		if leader == nil {
			bo.sleep(deadline)
			continue
		}
		var idx int
		var err error
		if r.Unbatched {
			idx, _, err = leader.Propose(payload)
		} else {
			idx, _, err = leader.ProposeAsync(payload).Wait()
		}
		if err != nil {
			if errors.Is(err, raft.ErrLeaderStepdown) {
				// The leader told us it stepped down (CheckQuorum or a
				// transfer); its successor is likely already up. Re-probe
				// immediately rather than waiting out a backoff slice.
				atomic.AddUint64(&r.retries, 1)
				bo.reset()
				continue
			}
			bo.sleep(deadline)
			continue
		}
		bo.reset()
		ch := r.storeFor(leader.ID()).wait(idx, cmd.Client, cmd.Seq)
		// Wait a bounded slice per attempt: a deposed leader never
		// commits our index, so block briefly and re-probe for the real
		// leader (the dedup table makes retries idempotent).
		attempt := 300 * time.Millisecond
		if rem := time.Until(deadline); rem < attempt {
			attempt = rem
		}
		select {
		case wr := <-ch:
			if wr.mine {
				return wr.res, nil
			}
			// A different entry landed at our index: leadership changed.
			// Loop and retry.
		case <-time.After(attempt):
			// Try again, possibly against a newer leader.
		}
	}
	return Result{}, ErrTimeout
}

// Put sets key to value.
func (r *Replicated) Put(key, value string, timeout time.Duration) error {
	_, err := r.Do(OpPut, key, value, "", timeout)
	return err
}

// Get reads key linearizably (through the log).
func (r *Replicated) Get(key string, timeout time.Duration) (string, bool, error) {
	res, err := r.Do(OpGet, key, "", "", timeout)
	return res.Value, res.Found, err
}

// Delete removes key, reporting whether it existed.
func (r *Replicated) Delete(key string, timeout time.Duration) (bool, error) {
	res, err := r.Do(OpDelete, key, "", "", timeout)
	return res.Found, err
}

// CAS sets key to value iff its current value is old.
func (r *Replicated) CAS(key, old, value string, timeout time.Duration) (bool, error) {
	res, err := r.Do(OpCAS, key, value, old, timeout)
	return res.Swapped, err
}

// Append appends value to key's current value and returns the new value.
func (r *Replicated) Append(key, value string, timeout time.Duration) (string, error) {
	res, err := r.Do(OpAppend, key, value, "", timeout)
	return res.Value, err
}

// FastGet reads key linearizably WITHOUT a log write, through the default
// leader-ReadIndex mode: the leader confirms its leadership with a quorum
// barrier (coalesced with concurrent reads in the core), the local state
// machine catches up to the confirmed index, and the read is served from
// memory. An ErrLeaderStepdown redirect re-probes immediately — the
// successor is likely already up — while other failures back off; retries
// continue across leader changes until the deadline.
func (r *Replicated) FastGet(key string, timeout time.Duration) (string, bool, error) {
	return r.FastGetMode(key, ReadModeReadIndex, timeout)
}

// FastGetMode is FastGet with an explicit read path: leader ReadIndex
// barrier, leader lease (zero rounds while valid, barrier fallback), or
// follower-served (forwarded barrier, served from a follower's state
// machine).
func (r *Replicated) FastGetMode(key string, mode ReadMode, timeout time.Duration) (string, bool, error) {
	deadline := time.Now().Add(timeout)
	bo := r.newProbe()
	var rotate uint64
	for time.Now().Before(deadline) {
		attempt := 300 * time.Millisecond
		if rem := time.Until(deadline); rem < attempt {
			attempt = rem
		}
		var (
			idx    int
			err    error
			st     *Store
			served types.NodeID
		)
		switch mode {
		case ReadModeFollower:
			n := r.pickFollower(&rotate)
			if n == nil {
				bo.sleep(deadline)
				continue
			}
			idx, err = n.FollowerReadIndex(attempt)
			served = n.ID()
			st = r.storeFor(served)
		default:
			leader := r.Cluster.Leader()
			if leader == nil {
				bo.sleep(deadline)
				continue
			}
			if mode == ReadModeLease {
				if i, ok := leader.LeaseRead(); ok {
					idx = i
				} else {
					// No valid lease (fresh term, transfer, or reconfig in
					// flight): fall back to a full barrier.
					idx, err = leader.ReadIndex(attempt)
				}
			} else {
				idx, err = leader.ReadIndex(attempt)
			}
			served = leader.ID()
			st = r.storeFor(served)
		}
		if err != nil {
			if errors.Is(err, raft.ErrLeaderStepdown) {
				// The leader told us it stepped down; its successor is
				// likely already up. Re-probe immediately rather than
				// waiting out a backoff slice (same policy as Do).
				atomic.AddUint64(&r.retries, 1)
				bo.reset()
				continue
			}
			bo.sleep(deadline)
			continue
		}
		if !waitApplied(st, idx, deadline) {
			return "", false, ErrTimeout
		}
		r.chargeServe(served)
		v, ok := st.LocalGet(key)
		return v, ok, nil
	}
	return "", false, ErrTimeout
}

// chargeServe executes the configured read-execution cost on the serving
// replica's serialized lane (no-op when ReadServeCost is zero).
func (r *Replicated) chargeServe(id types.NodeID) {
	if r.ReadServeCost <= 0 {
		return
	}
	r.mu.Lock()
	lane, ok := r.serveMu[id]
	if !ok {
		lane = new(sync.Mutex)
		r.serveMu[id] = lane
	}
	r.mu.Unlock()
	lane.Lock()
	time.Sleep(r.ReadServeCost)
	lane.Unlock()
}

// pickFollower returns a non-leader node to serve a forwarded read,
// rotating across candidates so repeated reads spread over the replica
// set. Falls back to any node (including the leader, which serves the
// forwarded barrier locally) when no follower is available.
func (r *Replicated) pickFollower(rotate *uint64) *raft.Node {
	nodes := r.Cluster.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	var followers []*raft.Node
	for _, n := range nodes {
		if _, role, _ := n.Status(); role != raft.Leader {
			followers = append(followers, n)
		}
	}
	pool := followers
	if len(pool) == 0 {
		pool = nodes
	}
	*rotate++
	return pool[int(*rotate)%len(pool)]
}

// waitApplied blocks until the store's apply cursor reaches idx (the
// serve-after-apply half of every read barrier), bounded by the deadline.
func waitApplied(st *Store, idx int, deadline time.Time) bool {
	for st.AppliedIndex() < idx {
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
	return true
}
