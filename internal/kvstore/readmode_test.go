package kvstore

import (
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

func TestParseReadMode(t *testing.T) {
	cases := []struct {
		in   string
		want ReadMode
	}{
		{"leader-readindex", ReadModeReadIndex},
		{"readindex", ReadModeReadIndex},
		{"", ReadModeReadIndex},
		{"leader-lease", ReadModeLease},
		{"lease", ReadModeLease},
		{"follower", ReadModeFollower},
	}
	for _, c := range cases {
		got, err := ParseReadMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseReadMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseReadMode("bogus"); err == nil {
		t.Error("ParseReadMode accepted bogus mode")
	}
	// The canonical spellings round-trip through String.
	for _, m := range []ReadMode{ReadModeReadIndex, ReadModeLease, ReadModeFollower} {
		if got, err := ParseReadMode(m.String()); err != nil || got != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, m.String(), got, err)
		}
	}
}

// Every read mode must observe a write that was acknowledged before the
// read was issued — the core linearizability contract FastGet promises
// regardless of which replica serves.
func TestFastGetModesObservePrecedingWrites(t *testing.T) {
	modes := []ReadMode{ReadModeReadIndex, ReadModeLease, ReadModeFollower}
	r := NewReplicated(cluster.Options{N: 5, Latency: 100 * time.Microsecond, Seed: 53})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		val := fmt.Sprintf("v%d", i)
		if err := r.Put("k", val, opTimeout); err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			v, ok, err := r.FastGetMode("k", m, opTimeout)
			if err != nil || !ok {
				t.Fatalf("%v: FastGetMode: %q %v %v", m, v, ok, err)
			}
			if v != val {
				t.Fatalf("%v observed %q after Put(%q) returned", m, v, val)
			}
		}
	}
}

// With leases disabled the lease mode must transparently fall back to the
// ReadIndex barrier and stay correct.
func TestFastGetLeaseModeFallsBackWhenDisabled(t *testing.T) {
	r := NewReplicated(cluster.Options{
		N: 3, Latency: 100 * time.Microsecond, Seed: 59, DisableLeaseRead: true,
	})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", "v", opTimeout); err != nil {
		t.Fatal(err)
	}
	v, ok, err := r.FastGetMode("k", ReadModeLease, opTimeout)
	if err != nil || !ok || v != "v" {
		t.Fatalf("lease mode with leases disabled: %q %v %v", v, ok, err)
	}
}

// Regression (ISSUE 10 satellite): a leadership transfer aborts in-flight
// read barriers with ErrLeaderStepdown, and FastGet must treat that as an
// immediate re-probe — not a generic error — succeeding promptly against
// the successor. Exercised across every read mode and repeated transfers.
func TestFastGetReprobesUnderLeadershipTransfer(t *testing.T) {
	r := NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 61})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", "stable", opTimeout); err != nil {
		t.Fatal(err)
	}
	modes := []ReadMode{ReadModeReadIndex, ReadModeLease, ReadModeFollower}
	for i := 0; i < 6; i++ {
		leader := r.Cluster.Leader()
		if leader == nil {
			if _, err := r.Cluster.WaitForLeader(opTimeout); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Hand leadership to the most caught-up voter, then read while the
		// transfer (and the stepdown aborts it causes) is in flight.
		members := types.NewNodeSet(types.NodeID(1), types.NodeID(2), types.NodeID(3))
		members.Remove(leader.ID())
		if to := leader.PickTransferTarget(members); to != types.NoNode {
			_ = leader.TransferLeader(to)
		}
		m := modes[i%len(modes)]
		v, ok, err := r.FastGetMode("k", m, opTimeout)
		if err != nil || !ok || v != "stable" {
			t.Fatalf("transfer %d (%v): FastGet %q %v %v", i, m, v, ok, err)
		}
	}
}

// The sharded client's mode-aware FastGet must stay linearizable per key
// across every shard and mode.
func TestShardedFastGetModes(t *testing.T) {
	s := NewSharded(4, cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 67})
	defer s.Stop()
	for g := raft.GroupID(0); g < 4; g++ {
		if _, err := s.Cluster.WaitForLeaderG(g, opTimeout); err != nil {
			t.Fatal(err)
		}
	}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, k := range keys {
		val := fmt.Sprintf("v%d", i)
		if err := s.Put(k, val, opTimeout); err != nil {
			t.Fatal(err)
		}
		for _, m := range []ReadMode{ReadModeReadIndex, ReadModeLease, ReadModeFollower} {
			v, ok, err := s.FastGetMode(k, m, opTimeout)
			if err != nil || !ok || v != val {
				t.Fatalf("%v %q: %q %v %v (want %q)", m, k, v, ok, err, val)
			}
		}
	}
}
