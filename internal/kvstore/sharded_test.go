package kvstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// TestShardOfIsStableAndCovers pins the shard map: routes are deterministic
// (the map is a deployment contract) and a modest keyspace reaches every
// shard.
func TestShardOfIsStableAndCovers(t *testing.T) {
	const shards = 4
	seen := make(map[raft.GroupID]int)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("key-%d", i)
		g := ShardOf(key, shards)
		if g >= shards {
			t.Fatalf("ShardOf(%q, %d) = %d out of range", key, shards, g)
		}
		if g2 := ShardOf(key, shards); g2 != g {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", key, g, g2)
		}
		seen[g]++
	}
	for g := raft.GroupID(0); g < shards; g++ {
		if seen[g] == 0 {
			t.Fatalf("shard %d received no keys out of 256: distribution %v", g, seen)
		}
	}
	// Single-shard degenerate case: everything routes to group 0.
	if g := ShardOf("anything", 1); g != 0 {
		t.Fatalf("ShardOf with 1 shard = %d", g)
	}
}

// TestShardedEndToEnd drives ops across all shards and checks (a) every
// value reads back, (b) each key's command applied in exactly its own
// shard's state machine — the keyspace partition is real, not just a
// routing convention.
func TestShardedEndToEnd(t *testing.T) {
	const shards = 3
	s := NewSharded(shards, cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 7})
	defer s.Stop()
	for g := raft.GroupID(0); g < shards; g++ {
		if _, err := s.Cluster.WaitForLeaderG(g, 10*time.Second); err != nil {
			t.Fatalf("shard %d: %v", g, err)
		}
	}

	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := s.Put(keys[i], fmt.Sprintf("v%d", i), 10*time.Second); err != nil {
			t.Fatalf("put %s: %v", keys[i], err)
		}
	}
	for i, k := range keys {
		v, ok, err := s.Get(k, 10*time.Second)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q %v %v", k, v, ok, err)
		}
	}

	// Partition check: each key lives in its shard's store and no other's.
	for _, k := range keys {
		home := s.ShardOf(k)
		for g := raft.GroupID(0); g < shards; g++ {
			leader := s.Cluster.LeaderG(g)
			if leader == nil {
				t.Fatalf("shard %d lost its leader", g)
			}
			_, ok := s.Store(g, leader.ID()).LocalGet(k)
			if ok != (g == home) {
				t.Fatalf("key %s (home shard %d): present=%v in shard %d", k, home, ok, g)
			}
		}
	}
}

// TestShardedConcurrentClientsAcrossShards: one session may run concurrent
// requests against different shards (independent seq domains), and separate
// sessions hammer all shards at once without cross-talk.
func TestShardedConcurrentClientsAcrossShards(t *testing.T) {
	const shards = 4
	s := NewSharded(shards, cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 11})
	defer s.Stop()
	for g := raft.GroupID(0); g < shards; g++ {
		if _, err := s.Cluster.WaitForLeaderG(g, 10*time.Second); err != nil {
			t.Fatalf("shard %d: %v", g, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 4; c++ {
		cl := s.NewClient()
		for w := 0; w < 4; w++ {
			key := fmt.Sprintf("c%d-w%d", c, w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if _, err := cl.Do(OpAppend, key, "x", "", 10*time.Second); err != nil {
						errs <- fmt.Errorf("%s: %w", key, err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	for c := 0; c < 4; c++ {
		for w := 0; w < 4; w++ {
			key := fmt.Sprintf("c%d-w%d", c, w)
			v, _, err := s.Get(key, 10*time.Second)
			if err != nil || v != "xxxxx" {
				t.Fatalf("%s = %q (%v), want xxxxx — appends lost or duplicated", key, v, err)
			}
		}
	}
}

// TestShardedStepdownRetry isolates one shard's leader mid-workload: the
// client's cached hint goes stale, the shard re-elects, and the request
// retries through to the new leader. Exactly-once still holds (the retried
// append lands once).
func TestShardedStepdownRetry(t *testing.T) {
	const shards = 2
	s := NewSharded(shards, cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 13})
	defer s.Stop()
	for g := raft.GroupID(0); g < shards; g++ {
		if _, err := s.Cluster.WaitForLeaderG(g, 10*time.Second); err != nil {
			t.Fatalf("shard %d: %v", g, err)
		}
	}
	key := "stepdown-key"
	g := s.ShardOf(key)
	if err := s.Put(key, "base", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Prime the default client's hint, then knock the hinted leader out.
	leader := s.Cluster.LeaderG(g)
	if leader == nil {
		t.Fatal("no leader to isolate")
	}
	s.Cluster.Net.Isolate(leader.ID())
	defer s.Cluster.Net.Heal()
	got, err := s.Append(key, "+retry", 20*time.Second)
	if err != nil {
		t.Fatalf("append across the shard's leader loss: %v", err)
	}
	if got != "base+retry" {
		t.Fatalf("append applied %q, want %q (duplicate or lost under retry)", got, "base+retry")
	}
	next := s.Cluster.LeaderG(g)
	if next == nil {
		t.Fatal("shard never re-elected")
	}
	if next.ID() == leader.ID() {
		t.Fatalf("isolated node %s still leads shard %d", leader.ID(), g)
	}
}

// TestShardedDedupSurvivesShardSnapshot is the exactly-once pin for the
// sharded store: a shard compacts its own WAL into a snapshot, a replica
// restarts from that snapshot, and a duplicate of an already-committed
// (client, shard-seq) command — the retry a client sends when an ack is
// lost — is still absorbed by the dedup table that rode along in the
// snapshot. Meanwhile the SAME numeric (client, seq) pair in a different
// shard is a distinct request and must apply: the dedup domains are per
// group.
func TestShardedDedupSurvivesShardSnapshot(t *testing.T) {
	const shards = 2
	var mu sync.Mutex
	storages := make(map[string]*raft.MemStorage) // guarded by mu
	storageFor := func(g raft.GroupID, id types.NodeID) raft.Storage {
		mu.Lock()
		defer mu.Unlock()
		k := fmt.Sprintf("%d/%s", g, id)
		st, ok := storages[k]
		if !ok {
			st = raft.NewMemStorage()
			storages[k] = st
		}
		return st
	}
	s := NewSharded(shards, cluster.Options{
		N:                 3,
		Latency:           100 * time.Microsecond,
		Seed:              17,
		StorageForG:       storageFor,
		SnapshotThreshold: 8,
	})
	defer s.Stop()
	for g := raft.GroupID(0); g < shards; g++ {
		if _, err := s.Cluster.WaitForLeaderG(g, 10*time.Second); err != nil {
			t.Fatalf("shard %d: %v", g, err)
		}
	}

	// Find one key per shard so we can address both dedup domains.
	keyIn := func(g raft.GroupID) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("probe-%d", i)
			if s.ShardOf(k) == g {
				return k
			}
		}
	}
	k0, k1 := keyIn(0), keyIn(1)

	cl := s.NewClient()
	if _, err := cl.Do(OpAppend, k0, "once", "", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// cl's first op used (client=cl.id, seq=1) in shard 0. The same numeric
	// pair in shard 1 is a separate request and must apply.
	if _, err := cl.Do(OpAppend, k1, "other-shard", "", 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Push shard 0 past its snapshot threshold so the WAL compacts.
	for i := 0; i < 12; i++ {
		if _, err := cl.Do(OpPut, k0, fmt.Sprintf("fill%d", i), "", 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Restart a follower of shard 0: it reloads from its own shard-local
	// snapshot + WAL tail (storageFor hands back the same MemStorage).
	leader0 := s.Cluster.LeaderG(0)
	var follower types.NodeID
	for _, id := range []types.NodeID{1, 2, 3} {
		if id != leader0.ID() {
			follower = id
			break
		}
	}
	members := []types.NodeID{1, 2, 3}
	s.Cluster.CrashNode(follower)
	s.Cluster.RestartNode(follower, members)

	// Duplicate delivery: re-propose the exact committed command bytes of
	// cl's first shard-0 request (client, seq=1) — what a client retry after
	// a lost ack looks like on the wire. The dedup table must swallow it.
	dup := Command{Op: OpAppend, Key: k0, Value: "once", Client: cl.id, Seq: 1}
	if _, err := s.Cluster.ProposeG(0, dup.Encode(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// A marker append AFTER the duplicate preserves the evidence: if the
	// dedup held, every replica ends at "fill11+sync"; a replica whose
	// restored dedup table lost cl's entry re-applies the duplicate and
	// shows "fill11once+sync" instead.
	got, err := s.Append(k0, "+sync", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const want = "fill11+sync"
	if got != want {
		t.Fatalf("duplicate (client,seq) applied on shard 0: %q, want %q", got, want)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range members {
		st := s.Store(0, id)
		for {
			if v, ok := st.LocalGet(k0); ok && strings.HasSuffix(v, "+sync") {
				if v != want {
					t.Fatalf("replica %s diverged after shard snapshot restart: %q, want %q", id, v, want)
				}
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("replica %s of shard 0 never converged", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// And the duplicate really was absorbed: the append ran once.
	v, _, err := s.Get(k1, 10*time.Second)
	if err != nil || v != "other-shard" {
		t.Fatalf("shard 1 value = %q (%v): per-shard seq domains broken", v, err)
	}
}
