package kvstore

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/backoff"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// Sharded is the multi-group replicated store: the keyspace is hash-
// partitioned across independent raft groups (one per shard) multiplexed
// over the cluster's shared transport and tick loop. Each shard is its own
// consensus instance — its own leader, log, snapshots, and dedup table — so
// aggregate write throughput scales with shards while per-key operations
// remain linearizable (cross-key operations spanning shards are NOT
// transactional; Adore-style reconfiguration applies per group).
type Sharded struct {
	Cluster *cluster.Cluster

	// Unbatched, when set before the first request, routes proposals
	// through the synchronous Propose path (one fsync and one broadcast
	// per command) instead of the group-commit ProposeAsync path — the
	// same benchmark baseline Replicated.Unbatched provides, here used to
	// isolate the per-group WAL pipeline the shard sweep parallelizes.
	Unbatched bool

	shards int

	mu     sync.Mutex
	stores map[shardNode]*Store // guarded by mu

	nextClient uint64 // accessed atomically
	retries    uint64 // accessed atomically
	def        *ShardClient
}

// shardNode addresses one shard's state machine on one node.
type shardNode struct {
	g  raft.GroupID
	id types.NodeID
}

// NewSharded starts an n-node cluster hosting `shards` raft groups, each
// applying into its own Store per node. opts.Groups is overridden; the
// caller configures everything else (N, latency, seed, snapshot threshold,
// per-group storage) as usual.
func NewSharded(shards int, opts cluster.Options) *Sharded {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded{shards: shards, stores: make(map[shardNode]*Store)}
	opts.Groups = shards
	opts.OnApplyG = func(g raft.GroupID, id types.NodeID, msg raft.ApplyMsg) {
		s.storeFor(g, id).Apply(msg)
	}
	opts.StateMachineForG = func(g raft.GroupID, id types.NodeID) raft.StateMachine {
		return s.storeFor(g, id)
	}
	s.Cluster = cluster.New(opts)
	s.def = s.NewClient()
	return s
}

// Shards returns the number of keyspace partitions (= raft groups).
func (s *Sharded) Shards() int { return s.shards }

// ShardOf maps a key to its raft group: FNV-1a over the key, mod shards.
// Stable across processes and restarts — the shard map is part of the
// deployment contract, not per-session state.
func (s *Sharded) ShardOf(key string) raft.GroupID { return ShardOf(key, s.shards) }

// ShardOf is the package-level shard map (exported so servers and clients
// compute identical routes).
func ShardOf(key string, shards int) raft.GroupID {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return raft.GroupID(h.Sum32() % uint32(shards))
}

func (s *Sharded) storeFor(g raft.GroupID, id types.NodeID) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := shardNode{g, id}
	st, ok := s.stores[k]
	if !ok {
		st = NewStore()
		s.stores[k] = st
	}
	return st
}

// Store returns shard g's state machine on the given replica.
func (s *Sharded) Store(g raft.GroupID, id types.NodeID) *Store { return s.storeFor(g, id) }

// Retries mirrors Replicated.Retries for the sharded service.
func (s *Sharded) Retries() uint64 { return atomic.LoadUint64(&s.retries) }

// Stop shuts the service down.
func (s *Sharded) Stop() { s.Cluster.Stop() }

// ShardClient is one logical client session against the sharded store. Its
// request identity is global, but sequence numbers, dedup state, leader
// hints, and backoff jitter are all per shard: each group's dedup table is
// its own state machine, so the "at most one outstanding request per
// client" contract holds independently per shard — one session may run
// concurrent requests as long as they target different shards.
type ShardClient struct {
	s  *Sharded
	id uint64

	mu    sync.Mutex
	seqs  map[raft.GroupID]uint64          // guarded by mu — per-shard sequence domains
	hints map[raft.GroupID]types.NodeID    // guarded by mu — cached leader per shard
	bos   map[raft.GroupID]*backoff.Backoff // guarded by mu — per-shard jitter streams
}

// NewClient mints a fresh client session for the sharded store.
func (s *Sharded) NewClient() *ShardClient {
	return &ShardClient{
		s:     s,
		id:    atomic.AddUint64(&s.nextClient, 1),
		seqs:  make(map[raft.GroupID]uint64),
		hints: make(map[raft.GroupID]types.NodeID),
		bos:   make(map[raft.GroupID]*backoff.Backoff),
	}
}

// nextSeq advances shard g's sequence counter for this session.
func (c *ShardClient) nextSeq(g raft.GroupID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seqs[g]++
	return c.seqs[g]
}

// backoffFor returns shard g's jitter stream, seeding it on first use.
func (c *ShardClient) backoffFor(g raft.GroupID) *backoff.Backoff {
	c.mu.Lock()
	defer c.mu.Unlock()
	bo := c.bos[g]
	if bo == nil {
		bo = backoff.New(backoffInitial, backoffMax, backoff.NextSeed())
		c.bos[g] = bo
	}
	return bo
}

// leaderFor resolves shard g's leader, trying the cached hint first (an
// O(1) Status check) before falling back to scanning the group. A fresh
// answer refreshes the hint.
func (c *ShardClient) leaderFor(g raft.GroupID) *raft.Node {
	c.mu.Lock()
	hint, ok := c.hints[g]
	c.mu.Unlock()
	if ok {
		if n := c.s.Cluster.NodeG(g, hint); n != nil {
			if _, role, _ := n.Status(); role == raft.Leader {
				return n
			}
		}
		c.dropHint(g)
	}
	n := c.s.Cluster.LeaderG(g)
	if n != nil {
		c.mu.Lock()
		c.hints[g] = n.ID()
		c.mu.Unlock()
	}
	return n
}

func (c *ShardClient) dropHint(g raft.GroupID) {
	c.mu.Lock()
	delete(c.hints, g)
	c.mu.Unlock()
}

// Do routes the command to its key's shard and runs the same retry protocol
// as Client.Do, scoped to that group: probe the shard's leader (hint
// first), propose, wait a bounded slice for the shard-local apply, and back
// off on failure with this shard's private jitter stream. ErrLeaderStepdown
// drops the hint and re-probes immediately; retries reuse the same
// (client, shard-seq) pair so the shard's dedup table absorbs duplicates.
func (c *ShardClient) Do(op Op, key, value, old string, timeout time.Duration) (Result, error) {
	s := c.s
	g := s.ShardOf(key)
	seq := c.nextSeq(g)
	cmd := Command{Op: op, Key: key, Value: value, Old: old, Client: c.id, Seq: seq}
	payload := cmd.Encode()
	deadline := time.Now().Add(timeout)
	bo := c.backoffFor(g)
	bo.Reset()
	for time.Now().Before(deadline) {
		leader := c.leaderFor(g)
		if leader == nil {
			atomic.AddUint64(&s.retries, 1)
			bo.Sleep(deadline)
			continue
		}
		var idx int
		var err error
		if s.Unbatched {
			idx, _, err = leader.Propose(payload)
		} else {
			idx, _, err = leader.ProposeAsync(payload).Wait()
		}
		if err != nil {
			c.dropHint(g)
			if errors.Is(err, raft.ErrLeaderStepdown) {
				// The shard's leader stepped down; its successor is likely
				// already up. Re-probe immediately.
				atomic.AddUint64(&s.retries, 1)
				bo.Reset()
				continue
			}
			atomic.AddUint64(&s.retries, 1)
			bo.Sleep(deadline)
			continue
		}
		bo.Reset()
		ch := s.storeFor(g, leader.ID()).wait(idx, cmd.Client, cmd.Seq)
		attempt := 300 * time.Millisecond
		if rem := time.Until(deadline); rem < attempt {
			attempt = rem
		}
		select {
		case wr := <-ch:
			if wr.mine {
				return wr.res, nil
			}
			// A different entry landed at our index: shard leadership
			// changed. Loop and retry.
		case <-time.After(attempt):
			// Possibly a deposed leader that will never commit our index;
			// re-probe (dedup makes the retry idempotent).
		}
	}
	return Result{}, ErrTimeout
}

// Do routes one command on the service's default session.
func (s *Sharded) Do(op Op, key, value, old string, timeout time.Duration) (Result, error) {
	return s.def.Do(op, key, value, old, timeout)
}

// Put sets key to value on its shard.
func (s *Sharded) Put(key, value string, timeout time.Duration) error {
	_, err := s.Do(OpPut, key, value, "", timeout)
	return err
}

// Get reads key linearizably through its shard's log.
func (s *Sharded) Get(key string, timeout time.Duration) (string, bool, error) {
	res, err := s.Do(OpGet, key, "", "", timeout)
	return res.Value, res.Found, err
}

// Delete removes key from its shard, reporting whether it existed.
func (s *Sharded) Delete(key string, timeout time.Duration) (bool, error) {
	res, err := s.Do(OpDelete, key, "", "", timeout)
	return res.Found, err
}

// CAS sets key to value iff its current value is old (shard-local atomicity).
func (s *Sharded) CAS(key, old, value string, timeout time.Duration) (bool, error) {
	res, err := s.Do(OpCAS, key, value, old, timeout)
	return res.Swapped, err
}

// Append appends value to key's current value and returns the new value.
func (s *Sharded) Append(key, value string, timeout time.Duration) (string, error) {
	res, err := s.Do(OpAppend, key, value, "", timeout)
	return res.Value, err
}

// FastGet reads key linearizably without a log write through its shard's
// leader-ReadIndex path (see Replicated.FastGet; here scoped to the key's
// group).
func (c *ShardClient) FastGet(key string, timeout time.Duration) (string, bool, error) {
	return c.FastGetMode(key, ReadModeReadIndex, timeout)
}

// FastGetMode is FastGet with an explicit read path, routed to the key's
// shard: leader ReadIndex barrier, leader lease (barrier fallback), or
// follower-served (forwarded barrier against one of the shard's
// followers).
func (c *ShardClient) FastGetMode(key string, mode ReadMode, timeout time.Duration) (string, bool, error) {
	s := c.s
	g := s.ShardOf(key)
	deadline := time.Now().Add(timeout)
	bo := c.backoffFor(g)
	bo.Reset()
	var rotate uint64
	for time.Now().Before(deadline) {
		attempt := 300 * time.Millisecond
		if rem := time.Until(deadline); rem < attempt {
			attempt = rem
		}
		var (
			idx int
			err error
			st  *Store
		)
		switch mode {
		case ReadModeFollower:
			n := c.pickFollower(g, &rotate)
			if n == nil {
				atomic.AddUint64(&s.retries, 1)
				bo.Sleep(deadline)
				continue
			}
			idx, err = n.FollowerReadIndex(attempt)
			st = s.storeFor(g, n.ID())
		default:
			leader := c.leaderFor(g)
			if leader == nil {
				atomic.AddUint64(&s.retries, 1)
				bo.Sleep(deadline)
				continue
			}
			if mode == ReadModeLease {
				if i, ok := leader.LeaseRead(); ok {
					idx = i
				} else {
					idx, err = leader.ReadIndex(attempt)
				}
			} else {
				idx, err = leader.ReadIndex(attempt)
			}
			st = s.storeFor(g, leader.ID())
		}
		if err != nil {
			c.dropHint(g)
			if errors.Is(err, raft.ErrLeaderStepdown) {
				// Shard leader stepped down mid-read; re-probe immediately
				// (same policy as Do).
				atomic.AddUint64(&s.retries, 1)
				bo.Reset()
				continue
			}
			atomic.AddUint64(&s.retries, 1)
			bo.Sleep(deadline)
			continue
		}
		bo.Reset()
		if !waitApplied(st, idx, deadline) {
			return "", false, ErrTimeout
		}
		v, ok := st.LocalGet(key)
		return v, ok, nil
	}
	return "", false, ErrTimeout
}

// pickFollower returns a non-leader node of shard g, rotating across the
// candidates (any node when the shard has no follower).
func (c *ShardClient) pickFollower(g raft.GroupID, rotate *uint64) *raft.Node {
	nodes := c.s.Cluster.NodesG(g)
	if len(nodes) == 0 {
		return nil
	}
	var followers []*raft.Node
	for _, n := range nodes {
		if _, role, _ := n.Status(); role != raft.Leader {
			followers = append(followers, n)
		}
	}
	pool := followers
	if len(pool) == 0 {
		pool = nodes
	}
	*rotate++
	return pool[int(*rotate)%len(pool)]
}

// FastGet reads through the service's default session.
func (s *Sharded) FastGet(key string, timeout time.Duration) (string, bool, error) {
	return s.def.FastGet(key, timeout)
}

// FastGetMode reads through the service's default session in the given mode.
func (s *Sharded) FastGetMode(key string, mode ReadMode, timeout time.Duration) (string, bool, error) {
	return s.def.FastGetMode(key, mode, timeout)
}
