// Package kvstore is the distributed key-value store the paper uses as its
// running application example (§2): a replicated map driven through the
// consensus log. Every operation — including reads — goes through the log,
// giving linearizable semantics, and client request IDs make retried
// proposals idempotent.
package kvstore

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"adore/internal/raft"
	"adore/internal/types"
)

// Op enumerates store operations.
type Op string

const (
	// OpPut sets a key; OpGet reads it; OpDelete removes it; OpCAS
	// performs compare-and-swap; OpAppend appends to the value.
	OpPut    Op = "put"
	OpGet    Op = "get"
	OpDelete Op = "delete"
	OpCAS    Op = "cas"
	OpAppend Op = "append"
)

// Command is the log entry payload (JSON-encoded).
type Command struct {
	Op    Op     `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
	Old   string `json:"old,omitempty"` // CAS expected value

	// Client and Seq identify the request for idempotency.
	Client uint64 `json:"client"`
	Seq    uint64 `json:"seq"`
}

// Encode serializes the command for raft.Propose.
func (c Command) Encode() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("kvstore: marshal: %v", err)) // all fields are marshalable
	}
	return b
}

// DecodeCommand parses a log payload.
func DecodeCommand(b []byte) (Command, error) {
	var c Command
	err := json.Unmarshal(b, &c)
	return c, err
}

// Result is the outcome of one applied command.
type Result struct {
	Value   string // Get/CAS: the (previous) value
	Found   bool   // Get/Delete: key existed
	Swapped bool   // CAS: swap performed
}

// Store is one replica's state machine. Feed it every committed entry (in
// order) via Apply; it maintains the map, deduplicates retried requests,
// and resolves local waiters.
type Store struct {
	mu      sync.Mutex
	data    map[string]string // guarded by mu
	lastSeq map[uint64]uint64 // client → highest applied Seq; guarded by mu
	lastRes map[uint64]Result // client → result of that Seq; guarded by mu
	waiters map[int][]waiter  // log index → waiters; guarded by mu
	applied int               // highest applied index; guarded by mu
}

type waiter struct {
	client uint64
	seq    uint64
	ch     chan waitResult
}

type waitResult struct {
	res  Result
	mine bool // the entry at the index was this waiter's command
}

// NewStore creates an empty state machine.
func NewStore() *Store {
	return &Store{
		data:    make(map[string]string),
		lastSeq: make(map[uint64]uint64),
		lastRes: make(map[uint64]Result),
		waiters: make(map[int][]waiter),
	}
}

// Apply consumes one committed raft entry. Non-command entries (no-ops,
// config changes) still resolve waiters at their index as "not mine".
// An EntrySnapshot message replaces the whole state with the image in
// Command — the restore path for crash recovery and leader-installed
// snapshots; the dedup tables ride inside the image, so exactly-once
// semantics survive a snapshot-based rejoin.
func (s *Store) Apply(msg raft.ApplyMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if msg.Kind == raft.EntrySnapshot {
		if msg.Index <= s.applied {
			// Stale restore: a store that outlived its node's restart is
			// already at or past the base, and the image is a prefix of
			// its current state. Rewinding would transiently expose old
			// values to local readers.
			return
		}
		if err := s.restoreLocked(msg.Command); err != nil {
			// The image was committed by consensus; failing to decode it
			// is unrecoverable divergence, not a retryable error.
			panic(fmt.Sprintf("kvstore: snapshot restore at index %d: %v", msg.Index, err))
		}
		s.applied = msg.Index
		// Waiters at indices the snapshot folded away resolve through the
		// restored dedup tables: if the client's request is recorded
		// there, it committed (with that result); otherwise its fate is
		// unknown and the waiter re-proposes.
		for idx, ws := range s.waiters {
			if idx > msg.Index {
				continue
			}
			for _, w := range ws {
				if w.seq != 0 && s.lastSeq[w.client] >= w.seq {
					w.ch <- waitResult{res: s.lastRes[w.client], mine: true}
				} else {
					w.ch <- waitResult{mine: false}
				}
			}
			delete(s.waiters, idx)
		}
		return
	}
	s.applied = msg.Index
	var cmd Command
	isCmd := false
	if msg.Kind == raft.EntryCommand {
		if c, err := DecodeCommand(msg.Command); err == nil {
			cmd = c
			isCmd = true
		}
	}
	var res Result
	if isCmd {
		if s.lastSeq[cmd.Client] >= cmd.Seq && cmd.Seq != 0 {
			res = s.lastRes[cmd.Client] // duplicate: return cached result
		} else {
			res = s.applyCommandLocked(cmd)
			if cmd.Seq != 0 {
				s.lastSeq[cmd.Client] = cmd.Seq
				s.lastRes[cmd.Client] = res
			}
		}
	}
	for _, w := range s.waiters[msg.Index] {
		w.ch <- waitResult{res: res, mine: isCmd && cmd.Client == w.client && cmd.Seq == w.seq}
	}
	delete(s.waiters, msg.Index)
}

func (s *Store) applyCommandLocked(c Command) Result {
	switch c.Op {
	case OpPut:
		s.data[c.Key] = c.Value
		return Result{Value: c.Value, Found: true}
	case OpGet:
		v, ok := s.data[c.Key]
		return Result{Value: v, Found: ok}
	case OpDelete:
		_, ok := s.data[c.Key]
		delete(s.data, c.Key)
		return Result{Found: ok}
	case OpCAS:
		v, ok := s.data[c.Key]
		if ok && v == c.Old {
			s.data[c.Key] = c.Value
			return Result{Value: v, Found: true, Swapped: true}
		}
		return Result{Value: v, Found: ok}
	case OpAppend:
		s.data[c.Key] += c.Value
		return Result{Value: s.data[c.Key], Found: true}
	default:
		return Result{}
	}
}

// wait registers interest in the command applied at index.
func (s *Store) wait(index int, client, seq uint64) chan waitResult {
	ch := make(chan waitResult, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.applied >= index {
		// Already applied: resolve via the dedup table.
		if s.lastSeq[client] >= seq {
			ch <- waitResult{res: s.lastRes[client], mine: true}
		} else {
			ch <- waitResult{mine: false}
		}
		return ch
	}
	s.waiters[index] = append(s.waiters[index], waiter{client: client, seq: seq, ch: ch})
	return ch
}

// LocalGet reads the key from the local replica without going through the
// log (fast but possibly stale).
func (s *Store) LocalGet(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Snapshot returns a copy of the map (diagnostics/tests).
func (s *Store) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// snapshotState is the gob-encoded durable image of a Store.
type snapshotState struct {
	Data    map[string]string
	LastSeq map[uint64]uint64
	LastRes map[uint64]Result
	Applied int
}

// SaveSnapshot serializes the state machine (data, dedup tables, applied
// index) for log compaction or node bootstrap, and reports the applied
// index the image captures. The capture is atomic with respect to Apply,
// so the index and the data always agree. Implements raft.StateMachine.
func (s *Store) SaveSnapshot() ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapshotState{
		Data:    s.data,
		LastSeq: s.lastSeq,
		LastRes: s.lastRes,
		Applied: s.applied,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("kvstore: snapshot: %w", err)
	}
	return buf.Bytes(), s.applied, nil
}

// LoadSnapshot replaces the state machine with a serialized image.
func (s *Store) LoadSnapshot(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoreLocked(b)
}

func (s *Store) restoreLocked(b []byte) error {
	var st snapshotState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return fmt.Errorf("kvstore: restore: %w", err)
	}
	s.data = st.Data
	s.lastSeq = st.LastSeq
	s.lastRes = st.LastRes
	s.applied = st.Applied
	if s.data == nil {
		s.data = make(map[string]string)
	}
	if s.lastSeq == nil {
		s.lastSeq = make(map[uint64]uint64)
	}
	if s.lastRes == nil {
		s.lastRes = make(map[uint64]Result)
	}
	return nil
}

// LastApplied returns the highest sequence number this replica has applied
// for the client, with its cached result. Pollers (the deterministic
// simulation's clients) use it to detect that a retried request landed:
// with one outstanding request per client, seq reaching the request's
// number means exactly that request committed, and res is its outcome.
func (s *Store) LastApplied(client uint64) (seq uint64, res Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq[client], s.lastRes[client]
}

// AppliedIndex returns the highest log index applied so far.
func (s *Store) AppliedIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// ErrTimeout reports that a request did not commit within its deadline.
// (Leadership loss mid-request is not surfaced: the client retries
// transparently, relying on the dedup table for idempotency.)
var ErrTimeout = errors.New("kvstore: request timed out")

// Proposer abstracts the raft node interface the client needs.
type Proposer interface {
	Propose(cmd []byte) (int, types.Time, error)
	ID() types.NodeID
}
