package kvstore

import "fmt"

// ReadMode selects which linearizable read path FastGet routes through.
// All three modes return linearizable results when the protocol guards are
// on; they differ only in cost and in which replica does the serving (see
// DESIGN.md "Linearizable reads" for the safety argument behind each row).
type ReadMode int

const (
	// ReadModeReadIndex is the default: the leader confirms its leadership
	// with one ReadIndex quorum barrier per request (coalesced with
	// concurrent barriers in the core) and serves from its state machine.
	ReadModeReadIndex ReadMode = iota
	// ReadModeLease serves from the leader with zero network rounds while
	// the leader's quorum-ack lease is valid, falling back to a ReadIndex
	// barrier when it is not (election in progress, transfer, reconfig).
	ReadModeLease
	// ReadModeFollower serves from a follower: the follower forwards a
	// ReadIndex to the leader, waits for its own apply to reach the
	// confirmed index, and answers from its local state machine — spreading
	// read load across replicas.
	ReadModeFollower
)

// String renders the flag spelling of the mode.
func (m ReadMode) String() string {
	switch m {
	case ReadModeReadIndex:
		return "leader-readindex"
	case ReadModeLease:
		return "leader-lease"
	case ReadModeFollower:
		return "follower"
	default:
		return fmt.Sprintf("ReadMode(%d)", int(m))
	}
}

// ParseReadMode parses the -read-mode flag spellings.
func ParseReadMode(s string) (ReadMode, error) {
	switch s {
	case "leader-readindex", "readindex", "":
		return ReadModeReadIndex, nil
	case "leader-lease", "lease":
		return ReadModeLease, nil
	case "follower":
		return ReadModeFollower, nil
	default:
		return 0, fmt.Errorf("kvstore: unknown read mode %q (want leader-readindex, leader-lease, or follower)", s)
	}
}
