package kvstore

import (
	"errors"
	"testing"
	"time"

	"adore/internal/raft/cluster"
)

// TestLeaderlessBackoff pins the client's retry budget against a leaderless
// cluster. With the historical fixed 1ms spin, a 300ms request burned ~300
// probe attempts per client — a core's worth of wakeups during any real
// outage. Capped jittered exponential backoff (1ms doubling to 40ms) bounds
// the same window to a couple dozen probes.
func TestLeaderlessBackoff(t *testing.T) {
	r := NewReplicated(cluster.Options{
		N:                  3,
		Latency:            100 * time.Microsecond,
		Seed:               53,
		ElectionTimeoutMin: 15 * time.Millisecond,
	})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Cut every link. CheckQuorum steps the leader down within a couple of
	// election intervals, and Pre-Vote keeps the isolated followers from
	// winning anything, so the cluster goes and stays leaderless.
	r.Cluster.Net.SetDropRate(1)
	leaderless := time.Now().Add(5 * time.Second)
	for r.Cluster.Leader() != nil {
		if !time.Now().Before(leaderless) {
			t.Fatal("leader never stepped down after losing all links")
		}
		time.Sleep(time.Millisecond)
	}

	before := r.Retries()
	if _, err := r.Do(OpGet, "k", "", "", 300*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("leaderless Do: err = %v, want ErrTimeout", err)
	}
	probes := r.Retries() - before
	// Worst case (every jittered sleep lands at the slice minimum) is ~21
	// probes in 300ms; the fixed-spin behavior this replaces was ~300.
	if probes > 60 {
		t.Fatalf("leaderless 300ms request made %d probe attempts; backoff should bound this to a couple dozen", probes)
	}
	if probes < 5 {
		t.Fatalf("leaderless 300ms request made only %d probe attempts; the client gave up retrying", probes)
	}
	t.Logf("%d probes in 300ms", probes)

	// Heal: the cluster re-elects and the same client session works again,
	// proving backoff state doesn't wedge the request path.
	r.Cluster.Net.SetDropRate(0)
	if err := r.Put("k", "v", 5*time.Second); err != nil {
		t.Fatalf("post-heal put: %v", err)
	}
	v, ok, err := r.Get("k", 5*time.Second)
	if err != nil || !ok || v != "v" {
		t.Fatalf("post-heal get = %q %v %v", v, ok, err)
	}
}
