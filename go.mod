module adore

go 1.22
