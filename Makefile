GO ?= go

.PHONY: all build test race vet lint lint-teeth check bench bench-evidence bench-evidence-7 bench-shards chaos chaos-smoke chaos-teeth chaos-elections sim-sweep sim-teeth sim-sweep-groups sim-teeth-groups

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order within each package, so tests that
# quietly depend on a predecessor's side effects fail loudly (the seed is
# printed for replay).
race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# lint runs adore-lint, the repo-specific static checker (cmd/adore-lint):
# cache immutability, model determinism, lockset discipline, exhaustive
# switches over the model's enum types, transitive purity of the core and
# model packages, and the persist-before-send effect order in the Ready
# driver.
lint:
	$(GO) run ./cmd/adore-lint ./...

# lint-teeth proves each analysis still bites: the mutant fixtures under
# internal/lint/testdata (send-before-persist, dropped persist error,
# transitive time.Now reach, bare call to a *Locked helper, unlock-then-read
# window, ...) must keep producing their expected diagnostics, and the
# fixture harness fails any pass that goes inert (zero findings). The CLI
# golden tests pin output format and deterministic ordering the same way.
lint-teeth:
	$(GO) test -count=1 -run 'Fixture' ./internal/lint
	$(GO) test -count=1 -run 'CLI' ./cmd/adore-lint

# check is the full CI gate.
check: build vet lint lint-teeth race

# chaos is the full local sweep: 200 seeded nemesis schedules against live
# clusters with file-backed WALs, every run checked against the safety
# oracles (linearizability, committed-prefix agreement, election safety).
# A failing seed is replayable verbatim: raft-chaos -seed N.
chaos:
	$(GO) run ./cmd/raft-chaos -seeds 200 -duration 2s

# chaos-smoke is the CI slice: fewer seeds, shorter horizon, race detector
# on the harness binary's cluster.
chaos-smoke:
	$(GO) run -race ./cmd/raft-chaos -seeds 25 -duration 1s

# chaos-teeth proves the harness catches a reintroduced reconfiguration bug:
# with R2 disabled the crafted double-shed schedule must produce violations.
chaos-teeth:
	$(GO) run ./cmd/raft-chaos -seeds 3 -duration 1500ms -teeth -disable-r2 -mem

# chaos-elections is the election-robustness gate: both election teeth
# (knock out Pre-Vote → the rejoin-disruption schedule must be caught;
# knock out CheckQuorum → the stale-leader schedule must be caught; each
# exits 1 if its oracle stayed silent), then a 100-seed all-guards-on
# simulator sweep over the full nemesis mix (partial partitions,
# isolation+rejoin, transfers, drop-leader reconfigs), which must stay
# violation-free.
chaos-elections:
	$(GO) run ./cmd/raft-chaos -teeth -disable-prevote -seeds 1
	$(GO) run ./cmd/raft-chaos -teeth -disable-checkquorum -seeds 1
	$(GO) run ./cmd/raft-chaos -sim -seeds 100

# sim-sweep runs the same schedules in the deterministic simulator: the
# whole execution (not just the fault plan) is a pure function of the seed,
# there are no wall-clock sleeps, and the executable refinement checker
# (replica logs vs the ADORE cache tree) joins the oracle set — so 500
# seeds finish in seconds and a failing seed replays byte-identically.
sim-sweep:
	$(GO) run ./cmd/raft-chaos -sim -seeds 500

# sim-teeth: the simulator's oracles (committed-prefix, refinement,
# linearizability) must catch the R2 double-shed divergence. With
# -disable-r2 explicit the tool expects violations and exits 0 on a catch.
sim-teeth:
	$(GO) run ./cmd/raft-chaos -sim -teeth -disable-r2 -seeds 1

# sim-sweep-groups is the multi-group sweep: 500 seeds with the keyspace
# hash-partitioned across 3 raft groups, every oracle (linearizability,
# committed prefix, refinement, election stability) checked per group.
sim-sweep-groups:
	$(GO) run ./cmd/raft-chaos -sim -groups 3 -seeds 500

# sim-teeth-groups: the cross-group storage-corruption schedule — group 1's
# WAL is destroyed under a flipped partition (modeling the flat-layout bug
# where one group's compaction unlinks another's segments) — must produce
# violations attributed to group 1 and ONLY group 1; the intact group 0 is
# the control arm.
sim-teeth-groups:
	$(GO) run ./cmd/raft-chaos -teeth -groups 2 -seeds 1

# bench is the smoke pass CI runs: every Go benchmark once (-benchtime=1x,
# no test functions), then a small durable batched-vs-unbatched Fig. 16
# ablation written as BENCH_smoke.json. No thresholds — it just must
# complete, so the benchmarks can't bit-rot.
bench:
	$(GO) test -bench . -benchtime=1x -benchmem -run '^$$' ./...
	$(GO) run ./cmd/raft-bench -requests 800 -reconfig-every 200 -clients 16 \
		-latency 50us -jitter 20us -durable -ab -window 200 -json BENCH_smoke.json
	$(GO) run ./cmd/raft-bench -recovery -recovery-histories 2000,4000
	$(GO) run ./cmd/raft-bench -shards 1,2 -shard-requests 600

# bench-evidence regenerates the committed BENCH_2.json: the Fig. 16
# series re-measured with group commit on and off (32 concurrent clients,
# file-backed WALs), two seeds per mode.
bench-evidence:
	$(GO) run ./cmd/raft-bench -requests 5000 -reconfig-every 1000 -clients 32 \
		-latency 50us -jitter 20us -durable -ab -runs 2 -window 500 -json BENCH_2.json

# bench-evidence-7 regenerates the committed BENCH_7.json: restart
# recovery and follower catch-up for the same histories with and without
# compaction — replayed entries bounded by the retained tail vs the whole
# WAL, one InstallSnapshot image vs walking the append pipeline.
bench-evidence-7:
	$(GO) run ./cmd/raft-bench -recovery -json BENCH_7.json

# bench-shards regenerates the committed BENCH_9.json: aggregate propose
# throughput for the SAME 16-client population against 1, 2, 4, and 8 raft
# groups, per-group WAL device latency simulated per DESIGN.md's
# substitution table (a single benchmark-host disk serializes every
# group's fsync and would measure the device, not the architecture).
bench-shards:
	$(GO) run ./cmd/raft-bench -shards 1,2,4,8 -json BENCH_9.json
