GO ?= go

.PHONY: all build test race vet lint check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs adore-lint, the repo-specific static checker (cmd/adore-lint):
# cache immutability, model determinism, lock-annotation discipline, and
# exhaustive switches over the model's enum types.
lint:
	$(GO) run ./cmd/adore-lint ./...

# check is the full CI gate.
check: build vet lint race

bench:
	$(GO) test -bench=. -benchmem ./...
