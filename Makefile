GO ?= go

.PHONY: all build test race vet lint lint-teeth check bench bench-evidence bench-reads-smoke chaos chaos-smoke chaos-teeth chaos-elections chaos-leases sim-sweep sim-teeth sim-sweep-groups sim-teeth-groups

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order within each package, so tests that
# quietly depend on a predecessor's side effects fail loudly (the seed is
# printed for replay).
race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# lint runs adore-lint, the repo-specific static checker (cmd/adore-lint):
# cache immutability, model determinism, lockset discipline, exhaustive
# switches over the model's enum types, transitive purity of the core and
# model packages, and the persist-before-send effect order in the Ready
# driver.
lint:
	$(GO) run ./cmd/adore-lint ./...

# lint-teeth proves each analysis still bites: the mutant fixtures under
# internal/lint/testdata (send-before-persist, dropped persist error,
# transitive time.Now reach, bare call to a *Locked helper, unlock-then-read
# window, ...) must keep producing their expected diagnostics, and the
# fixture harness fails any pass that goes inert (zero findings). The CLI
# golden tests pin output format and deterministic ordering the same way.
lint-teeth:
	$(GO) test -count=1 -run 'Fixture' ./internal/lint
	$(GO) test -count=1 -run 'CLI' ./cmd/adore-lint

# check is the full CI gate.
check: build vet lint lint-teeth race

# chaos is the full local sweep: 200 seeded nemesis schedules against live
# clusters with file-backed WALs, every run checked against the safety
# oracles (linearizability, committed-prefix agreement, election safety).
# A failing seed is replayable verbatim: raft-chaos -seed N.
chaos:
	$(GO) run ./cmd/raft-chaos -seeds 200 -duration 2s

# chaos-smoke is the CI slice: fewer seeds, shorter horizon, race detector
# on the harness binary's cluster.
chaos-smoke:
	$(GO) run -race ./cmd/raft-chaos -seeds 25 -duration 1s

# chaos-teeth proves the harness catches a reintroduced reconfiguration bug:
# with R2 disabled the crafted double-shed schedule must produce violations.
chaos-teeth:
	$(GO) run ./cmd/raft-chaos -seeds 3 -duration 1500ms -teeth -disable-r2 -mem

# chaos-elections is the election-robustness gate: both election teeth
# (knock out Pre-Vote → the rejoin-disruption schedule must be caught;
# knock out CheckQuorum → the stale-leader schedule must be caught; each
# exits 1 if its oracle stayed silent), then a 100-seed all-guards-on
# simulator sweep over the full nemesis mix (partial partitions,
# isolation+rejoin, transfers, drop-leader reconfigs), which must stay
# violation-free.
chaos-elections:
	$(GO) run ./cmd/raft-chaos -teeth -disable-prevote -seeds 1
	$(GO) run ./cmd/raft-chaos -teeth -disable-checkquorum -seeds 1
	$(GO) run ./cmd/raft-chaos -sim -seeds 100

# chaos-leases is the lease-read teeth: with the transfer/reconfig lease
# invalidation knocked out, the crafted deafen+transfer schedule must trip
# the stale-lease oracle — the run exits 1, and `!` requires exactly that.
# (The guard-on control arm of the same schedule is pinned by
# TestTeethLeaseGuard, and every all-guards-on sweep keeps the oracle
# armed over generated schedules.)
chaos-leases:
	! $(GO) run ./cmd/raft-chaos -teeth -disable-lease-guard -seeds 1

# sim-sweep runs the same schedules in the deterministic simulator: the
# whole execution (not just the fault plan) is a pure function of the seed,
# there are no wall-clock sleeps, and the executable refinement checker
# (replica logs vs the ADORE cache tree) joins the oracle set — so 500
# seeds finish in seconds and a failing seed replays byte-identically.
sim-sweep:
	$(GO) run ./cmd/raft-chaos -sim -seeds 500

# sim-teeth: the simulator's oracles (committed-prefix, refinement,
# linearizability) must catch the R2 double-shed divergence. With
# -disable-r2 explicit the tool expects violations and exits 0 on a catch.
sim-teeth:
	$(GO) run ./cmd/raft-chaos -sim -teeth -disable-r2 -seeds 1

# sim-sweep-groups is the multi-group sweep: 500 seeds with the keyspace
# hash-partitioned across 3 raft groups, every oracle (linearizability,
# committed prefix, refinement, election stability) checked per group.
sim-sweep-groups:
	$(GO) run ./cmd/raft-chaos -sim -groups 3 -seeds 500

# sim-teeth-groups: the cross-group storage-corruption schedule — group 1's
# WAL is destroyed under a flipped partition (modeling the flat-layout bug
# where one group's compaction unlinks another's segments) — must produce
# violations attributed to group 1 and ONLY group 1; the intact group 0 is
# the control arm.
sim-teeth-groups:
	$(GO) run ./cmd/raft-chaos -teeth -groups 2 -seeds 1

# bench is the smoke pass CI runs: every Go benchmark once (-benchtime=1x,
# no test functions), then a small durable batched-vs-unbatched Fig. 16
# ablation written as BENCH_smoke.json. No thresholds — it just must
# complete, so the benchmarks can't bit-rot.
bench:
	$(GO) test -bench . -benchtime=1x -benchmem -run '^$$' ./...
	$(GO) run ./cmd/raft-bench -requests 800 -reconfig-every 200 -clients 16 \
		-latency 50us -jitter 20us -durable -ab -window 200 -json BENCH_smoke.json
	$(GO) run ./cmd/raft-bench -recovery -recovery-histories 2000,4000
	$(GO) run ./cmd/raft-bench -shards 1,2 -shard-requests 600

# bench-evidence regenerates one committed BENCH_<n>.json, selected by
# number (make bench-evidence BENCH=<n>):
#   2   Fig. 16 series with group commit on and off (32 clients, file WALs)
#   7   restart recovery and follower catch-up, compacted vs full WAL
#   9   multi-raft shard scaling (the same 16 clients vs 1/2/4/8 groups,
#       per-group WAL device latency per DESIGN.md's substitution table)
#   10  read-path mode grid (ReadIndex / lease / follower) and the
#       follower-scaling sweep
BENCH ?= 2
bench-evidence:
	@case "$(BENCH)" in \
	2) $(GO) run ./cmd/raft-bench -requests 5000 -reconfig-every 1000 -clients 32 \
		-latency 50us -jitter 20us -durable -ab -runs 2 -window 500 -json BENCH_2.json ;; \
	7) $(GO) run ./cmd/raft-bench -recovery -json BENCH_7.json ;; \
	9) $(GO) run ./cmd/raft-bench -shards 1,2,4,8 -json BENCH_9.json ;; \
	10) $(GO) run ./cmd/raft-bench -reads -json BENCH_10.json ;; \
	*) echo "unknown BENCH=$(BENCH) (known: 2, 7, 9, 10)"; exit 1 ;; \
	esac

# bench-reads-smoke is the CI slice of BENCH 10: the same mode grid and
# follower sweep at reduced size — no thresholds, it just must complete.
bench-reads-smoke:
	$(GO) run ./cmd/raft-bench -reads -read-requests 600 -read-clients 8
