GO ?= go

.PHONY: all build test race vet lint check bench bench-evidence

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs adore-lint, the repo-specific static checker (cmd/adore-lint):
# cache immutability, model determinism, lock-annotation discipline, and
# exhaustive switches over the model's enum types.
lint:
	$(GO) run ./cmd/adore-lint ./...

# check is the full CI gate.
check: build vet lint race

# bench is the smoke pass CI runs: every Go benchmark once (-benchtime=1x,
# no test functions), then a small durable batched-vs-unbatched Fig. 16
# ablation written as BENCH_smoke.json. No thresholds — it just must
# complete, so the benchmarks can't bit-rot.
bench:
	$(GO) test -bench . -benchtime=1x -benchmem -run '^$$' ./...
	$(GO) run ./cmd/raft-bench -requests 800 -reconfig-every 200 -clients 16 \
		-latency 50us -jitter 20us -durable -ab -window 200 -json BENCH_smoke.json

# bench-evidence regenerates the committed BENCH_2.json: the Fig. 16
# series re-measured with group commit on and off (32 concurrent clients,
# file-backed WALs), two seeds per mode.
bench-evidence:
	$(GO) run ./cmd/raft-bench -requests 5000 -reconfig-every 1000 -clients 32 \
		-latency 50us -jitter 20us -durable -ab -runs 2 -window 500 -json BENCH_2.json
