// Package adore_test holds the repository-level benchmark suite: one bench
// per experiment in the paper's evaluation (see DESIGN.md §4 and
// EXPERIMENTS.md for the mapping), plus ablation benches for the design
// choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package adore_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adore/internal/bench"
	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/explore"
	"adore/internal/kvstore"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/raft/transport"
	"adore/internal/raftnet"
	"adore/internal/refine"
	"adore/internal/sraft"
	"adore/internal/types"
)

// --- E1 (Fig. 16): runtime latency under reconfiguration -----------------

// BenchmarkFig16ReconfigLatency runs a scaled-down Fig. 16 per iteration
// (the full-size series is produced by cmd/raft-bench) and reports mean
// request latency plus the reconfiguration stall as custom metrics.
func BenchmarkFig16ReconfigLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig16(bench.Fig16Options{
			Requests:      400,
			ReconfigEvery: 100,
			StartNodes:    5,
			NetLatency:    100 * time.Microsecond,
			Seed:          int64(i) + 1,
			Timeout:       30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := res.Recorder.Summarize()
		b.ReportMetric(float64(s.Mean.Microseconds()), "µs/req-mean")
		b.ReportMetric(float64(s.Max.Microseconds()), "µs/req-max")
	}
}

// BenchmarkRuntimeThroughputNoReconfig is the E1 baseline: the same
// workload with a static 5-node configuration, isolating reconfiguration's
// cost.
func BenchmarkRuntimeThroughputNoReconfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig16(bench.Fig16Options{
			Requests:      400,
			ReconfigEvery: 0, // never
			StartNodes:    5,
			NetLatency:    100 * time.Microsecond,
			Seed:          int64(i) + 1,
			Timeout:       30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := res.Recorder.Summarize()
		b.ReportMetric(float64(s.Mean.Microseconds()), "µs/req-mean")
	}
}

// --- E1b: group-commit throughput (batched vs unbatched hot path) ---------

// benchProposeThroughput drives 64 concurrent proposers against a
// single-node raft on a real FileStorage WAL. The batched variant goes
// through ProposeAsync (group commit: one frame + one fsync per flush);
// the unbatched variant calls the synchronous Propose (one fsync per
// command). fsyncs/op is reported from a CountingStorage wrapper.
func benchProposeThroughput(b *testing.B, unbatched bool) {
	fs, err := raft.OpenFileStorage(filepath.Join(b.TempDir(), "wal"))
	if err != nil {
		b.Fatal(err)
	}
	cs := &raft.CountingStorage{Inner: fs}
	net := transport.NewMemNetwork(0, 0, 1)
	inbox := make(chan raft.Message, 64)
	n := raft.StartNode(raft.Options{
		ID:        1,
		Members:   []types.NodeID{1},
		Transport: net.Attach(1, inbox),
		Storage:   cs,
	})
	defer n.Stop()
	go func() {
		for range n.ApplyCh() {
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, role, _ := n.Status(); role == raft.Leader {
			break
		}
		if !time.Now().Before(deadline) {
			b.Fatal("single node did not elect itself")
		}
		time.Sleep(time.Millisecond)
	}

	const proposers = 64
	base := cs.Syncs()
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < proposers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := []byte("bench-command-payload")
			for {
				if next.Add(1) > int64(b.N) {
					return
				}
				var err error
				if unbatched {
					_, _, err = n.Propose(cmd)
				} else {
					_, _, err = n.ProposeAsync(cmd).Wait()
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(cs.Syncs()-base)/float64(b.N), "fsyncs/op")
}

// BenchmarkProposeThroughputBatched measures the group-commit hot path:
// many proposals share each WAL frame, fsync, and AppendEntries broadcast.
func BenchmarkProposeThroughputBatched(b *testing.B) { benchProposeThroughput(b, false) }

// BenchmarkProposeThroughputUnbatched is the naive baseline: one durable
// WAL frame per proposal, serialized under the state lock.
func BenchmarkProposeThroughputUnbatched(b *testing.B) { benchProposeThroughput(b, true) }

// --- E2: CADO vs Adore model-checking effort ------------------------------

func benchExplore(b *testing.B, rules core.Rules, depth int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		st := core.NewState(config.RaftSingleNode, types.Range(1, 3), rules)
		res := explore.BFS(st, explore.Options{MaxDepth: depth, MaxStates: 2_000_000})
		if res.Violation != nil {
			b.Fatalf("violation: %v", res.Violation)
		}
		b.ReportMetric(float64(res.States), "states")
		b.ReportMetric(float64(res.Transitions), "transitions")
	}
}

// BenchmarkExploreCADO and BenchmarkExploreAdore reproduce the paper's
// effort comparison (1.3k vs 4.5k lines of proof; here: state spaces and
// checking time at equal bounds).
func BenchmarkExploreCADO(b *testing.B)  { benchExplore(b, core.StaticRules(), 4) }
func BenchmarkExploreAdore(b *testing.B) { benchExplore(b, core.DefaultRules(), 4) }

// BenchmarkExploreAdoreStopTheWorld is an ablation: the §8 stop-the-world
// variant prunes stale branches, shrinking the reachable space.
func BenchmarkExploreAdoreStopTheWorld(b *testing.B) {
	r := core.DefaultRules()
	r.StopTheWorld = true
	benchExplore(b, r, 4)
}

// --- E3: refinement checking ----------------------------------------------

// BenchmarkRefinementCheck measures lockstep SRaft↔Adore simulation with
// logMatch checked at every step (Lemma C.1's executable form).
func BenchmarkRefinementCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := refine.New(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
		if _, err := c.Elect(1, types.NewNodeSet(1, 2)); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 20; j++ {
			if err := c.Invoke(1, types.MethodID(j+1)); err != nil {
				b.Fatal(err)
			}
			if err := c.Commit(1, types.NewNodeSet(1, 2)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(c.Checks), "logMatch-checks")
	}
}

// BenchmarkTraceTransforms measures the Appendix C trace normalization
// (filter → sort → group) on random asynchronous executions (E7).
func BenchmarkTraceTransforms(b *testing.B) {
	mk := func() *raftnet.State {
		return raftnet.New(config.RaftSingleNode, types.Range(1, 4), core.DefaultRules())
	}
	traces := make([][]raftnet.Action, 8)
	for i := range traces {
		traces[i], _ = raftnet.RandomExecution(mk, int64(i), 80)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sraft.Normalize(mk, traces[i%len(traces)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: scheme instantiations --------------------------------------------

// BenchmarkSchemesAssumptions measures the REFLEXIVE/OVERLAP discharge per
// scheme (the paper's per-scheme proof obligations).
func BenchmarkSchemesAssumptions(b *testing.B) {
	for _, s := range config.AllSchemes() {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			depth := 2
			for i := 0; i < b.N; i++ {
				cases, err := config.CheckAssumptions(s, types.Range(1, 3), types.Range(1, 5), depth)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cases), "cases")
			}
		})
	}
}

// BenchmarkSchemesModelOps measures raw model-operation throughput under
// each scheme (pull+invoke+push round).
func BenchmarkSchemesModelOps(b *testing.B) {
	for _, s := range config.AllSchemes() {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			st := core.NewState(s, types.Range(1, 3), core.DefaultRules())
			q := types.NewNodeSet(1, 2)
			if s.Name() == "unanimous" {
				q = types.Range(1, 3)
			}
			if _, err := st.Pull(1, core.PullChoice{Q: q, T: 1}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := st.Invoke(1, types.MethodID(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := st.Push(1, core.PushChoice{Q: q, CM: m.ID}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5 (Fig. 4): violation search ----------------------------------------

// BenchmarkFindFig4Violation measures how quickly the bounded search
// rediscovers the published reconfiguration bug once R3 is disabled.
func BenchmarkFindFig4Violation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := core.NewState(config.RaftSingleNode, types.Range(1, 4), core.WithoutR3())
		res := explore.BFS(st, explore.Options{
			MaxDepth:     6,
			MaxStates:    500000,
			MinimalTimes: true,
			Actors:       types.NewNodeSet(1, 2),
			Invariants:   explore.BugHuntCheckers(),
		})
		if res.Violation == nil {
			b.Fatal("violation not found")
		}
		b.ReportMetric(float64(res.States), "states-to-bug")
	}
}

// --- E6 (Figs. 3/5): scenario replay --------------------------------------

// BenchmarkScenarios measures the scripted figure replays.
func BenchmarkScenarios(b *testing.B) {
	for _, sc := range explore.Scenarios() {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sc.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: invariant checking and model primitives --------------------------

// BenchmarkInvariantCheckAll measures the full invariant sweep on a
// mid-size tree.
func BenchmarkInvariantCheckAll(b *testing.B) {
	st := core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
	o := core.NewOracle(5)
	for i := 0; i < 60; i++ {
		nid := types.NodeID(o.Intn(3) + 1)
		switch o.Intn(3) {
		case 0:
			if ch, ok := o.PullChoice(st, nid, 0); ok {
				_, _ = st.Pull(nid, ch)
			}
		case 1:
			_, _ = st.Invoke(nid, types.MethodID(i))
		case 2:
			if ch, ok := o.PushChoice(st, nid, 0); ok {
				_, _ = st.Push(nid, ch)
			}
		}
	}
	checkers := explore.SafetyOnly()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range checkers {
			if v := c.Check(st); v != nil {
				b.Fatal(v)
			}
		}
	}
}

// BenchmarkStateKey measures the canonical Merkle key (the explorer's
// deduplication hot path).
func BenchmarkStateKey(b *testing.B) {
	st := core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
	if _, err := st.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Invoke(1, types.MethodID(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Key()
	}
}

// BenchmarkNetworkStep measures the raftnet specification's step rate
// (random executions).
func BenchmarkNetworkStep(b *testing.B) {
	mk := func() *raftnet.State {
		return raftnet.New(config.RaftSingleNode, types.Range(1, 4), core.DefaultRules())
	}
	b.ResetTimer()
	steps := 0
	for steps < b.N {
		trace, _ := raftnet.RandomExecution(mk, int64(steps), 200)
		steps += len(trace)
	}
}

// BenchmarkKVPut measures end-to-end replicated put latency on the runtime
// (3 nodes, minimal simulated latency).
func BenchmarkKVPut(b *testing.B) {
	r := kvstore.NewReplicated(cluster.Options{N: 3, Latency: 50 * time.Microsecond, Seed: 9})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(10 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i%128), "v", 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailabilityProbe measures the liveness extension (§9 future
// work): unavailability windows around a leader crash and a live
// reconfiguration.
func BenchmarkAvailabilityProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAvailability(bench.AvailabilityOptions{
			Nodes:         5,
			PhaseRequests: 150,
			NetLatency:    100 * time.Microsecond,
			Seed:          int64(i) + 1,
			Timeout:       30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Outages[0].Stall.Microseconds()), "µs-crash-stall")
		b.ReportMetric(float64(res.Outages[1].Stall.Microseconds()), "µs-reconfig-stall")
	}
}
