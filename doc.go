// Package adore is a from-scratch Go reproduction of "Adore: Atomic
// Distributed Objects with Certified Reconfiguration" (Honoré, Shin, Kim,
// Shao; PLDI 2022).
//
// The repository implements the paper's entire stack: the Adore
// protocol-level model with its cache-tree state and generic hot
// reconfiguration (internal/core, internal/config), the earlier ADO and
// reconfiguration-free CADO models (internal/ado, internal/cado), the
// paper's safety theorems as executable checkers with a bounded model
// checker standing in for the Coq proofs (internal/invariant,
// internal/explore), the §5 refinement stack down to an asynchronous
// network specification (internal/raftnet, internal/sraft,
// internal/refine), an executable Raft runtime with persistence and a
// replicated key-value store (internal/raft, internal/kvstore), and the
// benchmark harness that regenerates the paper's evaluation
// (internal/bench, bench_test.go).
//
// Start with README.md for orientation, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package adore
